//! Stored procedures: engine-independent transaction logic.
//!
//! The paper's evaluation uses stored-procedure transactions exclusively
//! (§1: applications submit whole transactions to avoid round trips). Each
//! [`Procedure`] interprets the transaction's declared read/write sets
//! positionally through the [`Access`] trait, so the identical logic runs on
//! BOHM, Hekaton, SI, OCC and 2PL.
//!
//! Conventions (documented per variant) fix how read-set and write-set
//! positions map to semantic roles; the `bohm-workloads` crate constructs
//! transactions obeying these conventions and asserts them in tests.

use crate::access::{AbortReason, Access};
use crate::value;

/// SmallBank stored procedures (paper §4.3; Cahill, PhD thesis 2009).
///
/// Tables: `Customer` (id → name, never updated), `Savings` (id → balance),
/// `Checking` (id → balance). Balances are `u64` cents in the first 8 bytes
/// of each 8-byte record.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SmallBankProc {
    /// Read-only: return the sum of a customer's checking and savings
    /// balances. Layout: reads = `[savings(c), checking(c)]`, writes = `[]`.
    Balance,
    /// Deposit `v` into checking.
    /// Layout: reads = `[checking(c)]`, writes = `[checking(c)]`.
    DepositChecking {
        /// Amount deposited.
        v: u64,
    },
    /// Add `v` (possibly negative) to savings; **aborts** (user abort) if the
    /// resulting balance would be negative.
    /// Layout: reads = `[savings(c)]`, writes = `[savings(c)]`.
    TransactSaving {
        /// Signed delta applied to the savings balance.
        v: i64,
    },
    /// Move all funds of customer 0 into customer 1's checking account.
    /// Layout: reads = `[savings(c0), checking(c0), checking(c1)]`,
    /// writes = `[savings(c0), checking(c0), checking(c1)]`.
    Amalgamate,
    /// Write a check of `v` against the combined balance; if it overdraws,
    /// an extra 1-unit penalty is charged (classic SmallBank semantics —
    /// this is the transaction that makes SI non-serializable).
    /// Layout: reads = `[savings(c), checking(c)]`, writes = `[checking(c)]`.
    WriteCheck {
        /// Check amount.
        v: u64,
    },
}

/// TPC-C-lite stored procedures over warehouse, district, customer and
/// order tables (a trimmed NewOrder/Payment/OrderStatus mix; the paper's
/// workloads never insert records, so this family is what exercises the
/// engines' record-insert paths end to end).
///
/// Record layout: every table keeps its semantic value in the `u64` prefix
/// (warehouse/district YTD, district order counter, customer balance, order
/// descriptor).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TpcCProc {
    /// Place an order: bump the district's order counter and **insert** a
    /// fresh order record describing the customer and line count. When the
    /// customer→orders secondary index is declared (a third read/write
    /// entry: the customer's posting list), the insert is **transactionally
    /// indexed** — the order row is added to the customer's posting list in
    /// the same transaction, and the order payload carries the customer's
    /// row id at byte offset 8 so Delivery can find the list to unmaintain.
    /// Layout: reads = `[district(w,d), customer(c)]` (+ `order_list(c)`),
    /// writes = `[district(w,d), order(o)]` (+ `order_list(c)`) with `o` a
    /// generator-assigned fresh key (write sets are declared up front, per
    /// BOHM's model).
    NewOrder {
        /// Order-line count, folded into the inserted order record.
        lines: u32,
    },
    /// Cross-table read-modify-write: add `amount` to the warehouse and
    /// district year-to-date totals and subtract it from the customer's
    /// balance (wrapping; balances may go negative, as in TPC-C).
    /// Layout: reads = writes = `[warehouse(w), district(w,d), customer(c)]`.
    Payment {
        /// Payment amount moved between customer and warehouse/district.
        amount: u64,
    },
    /// Read-only status check: read the customer, then probe one order slot
    /// which may or may not exist yet (an absence-tolerant read — the
    /// fingerprint distinguishes the two outcomes).
    /// Layout: reads = `[customer(c), order(o)]`, writes = `[]`.
    OrderStatus,
    /// Secondary-index scan with phantom protection: read the customer,
    /// then [`Access::index_scan`] the customer's **live orders** through
    /// the customer→orders posting list, folding every member order — row
    /// id and payload — plus the result cardinality into the fingerprint.
    /// A concurrent NewOrder adding to (or Delivery removing from) the
    /// customer's posting set must serialize entirely before or after the
    /// scan; a half-observed membership changes the fingerprint and is
    /// caught by the oracle audit. This is a genuine multi-range
    /// transaction: the posting-list read plus one point read per member
    /// order, scattered across the order table.
    /// Layout: reads = `[customer(c), order_list(c)]`,
    /// index_scans = `[{list: 1, table: order}]`, writes = `[]`.
    CustomerStatus,
    /// Range scan with phantom protection: read the customer, then scan a
    /// key range of the order table (the customer's order-history window),
    /// folding every present order — row id and payload — plus the result
    /// cardinality into the fingerprint. A concurrent NewOrder inserting
    /// into (or Delivery deleting from) the window must serialize entirely
    /// before or after the scan; a half-observed insert/delete changes the
    /// fingerprint and is caught by the oracle audit.
    /// Layout: reads = `[customer(c)]`, scans = `[order window]`,
    /// writes = `[]`.
    OrderHistory,
    /// Batch-consume the oldest undelivered orders of one generator stripe:
    /// each present order is read (folded into the fingerprint) and
    /// **deleted**, and the stripe's delivery cursor advances by the number
    /// of orders consumed. Absent probed slots fold [`ABSENT_FINGERPRINT`]
    /// and are left untouched, so Delivery is robust to racing streams.
    /// Layout: reads = writes = `[cursor(stripe), order(o_1..o_k)]` with
    /// the order rows chosen by the generator (write sets are declared up
    /// front, per BOHM's model, so the "oldest undelivered" window is the
    /// generator's per-stripe delivery cursor).
    ///
    /// With the customer→orders index declared, the layout gains the
    /// posting lists of the consumed orders' customers (deduplicated):
    /// reads = writes = `[cursor, order_1..order_k, list_1..list_j]` —
    /// positions after the cursor that share `reads[1].table` are orders;
    /// the remaining tail positions are lists. Each deleted order is
    /// removed from its customer's posting list (the customer row id is
    /// read from the order payload's byte offset 8) in the same
    /// transaction, keeping the index transactionally consistent.
    Delivery,
}

/// Fingerprint contribution of an absent record in an absence-tolerant
/// read (must differ from any checksum of real bytes with overwhelming
/// probability, and be identical across engines).
pub const ABSENT_FINGERPRINT: u64 = 0xAB5E_17F1_0A0B_5E17;

/// [`Procedure::RangeAudit`] fingerprint for a scan that observed a row
/// whose value violates the `expect_base + row` convention (a torn or
/// non-serializable read).
pub const SCAN_POISON_VALUE: u64 = 0xBAD5_CA40_BAD5_CA40;

/// [`Procedure::RangeAudit`] fingerprint for a scan whose present rows are
/// not one contiguous run (a phantom: a concurrent whole-window insert or
/// delete was observed halfway).
pub const SCAN_POISON_GAP: u64 = SCAN_POISON_VALUE | 1;

/// [`Procedure::RangeAudit`] fingerprint of a non-empty, consistent scan:
/// `(count << 32) ^ first_row`. Exposed so hammers can precompute the only
/// legal outcomes of an atomically-maintained window.
#[inline]
pub fn range_audit_fingerprint(count: u64, first_row: u64) -> u64 {
    (count << 32) ^ first_row
}

/// Transaction logic, parameterized by the declared read/write sets.
///
/// `Clone` but (since [`Procedure::Apply`]) no longer `Copy`: cloning is a
/// cheap `Arc` bump in the worst case, and every engine hot path takes the
/// procedure by reference.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Procedure {
    /// Read every read-set entry, fold a checksum, write nothing. Used by
    /// YCSB long read-only transactions (§4.2.3).
    ReadOnly,
    /// For each write-set entry `i`: if the same record appears in the read
    /// set, read it, add `delta` to its `u64` prefix and write the result
    /// back (a read-modify-write); otherwise blind-write `delta`.
    /// Read-set entries that are not written are read (into a checksum).
    /// Used by the §4.1 microbenchmark ("simple increment of this integer"),
    /// YCSB 10RMW and YCSB 2RMW-8R.
    ReadModifyWrite {
        /// Increment applied to each written record.
        delta: u64,
    },
    /// Write `value`'s little-endian bytes to every write-set entry without
    /// reading. Exercises BOHM's write-write ordering without read
    /// dependencies (paper §3.3.1 "write dependencies").
    BlindWrite {
        /// Value written to every write-set entry.
        value: u64,
    },
    /// SmallBank logic.
    SmallBank(SmallBankProc),
    /// TPC-C-lite logic (the record-inserting workload family).
    TpcC(TpcCProc),
    /// Absence-tolerant read-only probe: [`Access::read_maybe`] every
    /// read-set entry and fold each outcome — the record's checksum when
    /// present, [`ABSENT_FINGERPRINT`] when not — into the fingerprint.
    /// The lifecycle-audit twin of [`Procedure::ReadOnly`] (which panics on
    /// absence): equivalence tests use it to check that delete visibility
    /// is atomic across multiple records.
    ProbeAll,
    /// Audit **every declared scan** under a value convention: every
    /// present row must hold `expect_base + row` in its `u64` prefix, and
    /// the union of present rows must form one contiguous run (the declared
    /// ranges are expected to be adjacent, e.g. one window split in two for
    /// the multi-range hammer — a transaction whose scans observe
    /// different serial points shows up as a gap or partial count).
    /// Fingerprint: [`SCAN_POISON_VALUE`] on a value violation,
    /// [`SCAN_POISON_GAP`] on a non-contiguous union, `0` for an empty
    /// result, and [`range_audit_fingerprint`]`(count, first_row)`
    /// otherwise. The phantom hammer drives this against concurrent
    /// whole-window inserts/deletes: any non-atomic observation poisons or
    /// truncates the fingerprint. Layout: scans = `[window…]`,
    /// reads = writes = `[]`.
    RangeAudit {
        /// Expected value convention: present row `r` must hold
        /// `expect_base + r`.
        expect_base: u64,
    },
    /// Blind-write every write-set entry with `base + row` in its `u64`
    /// prefix (row-keyed values, unlike [`Procedure::BlindWrite`]'s single
    /// value) — the insert half of the phantom hammer: one transaction
    /// atomically materializes a whole key window. Fingerprint = `base`.
    InsertKeyed {
        /// Base of the row-keyed values (`base + row` per record).
        base: u64,
    },
    /// Delete every write-set entry, guarded by a user-abort check that
    /// runs **before** the first delete (honouring the logic-abort
    /// contract): if the `u64` prefix of read-set entry 0 is below `min`,
    /// the transaction aborts and no record is touched. Fingerprint = the
    /// guard value. Layout: reads = `[guard]`, writes = targets.
    /// Exercises the delete path (including blind deletes of absent slots
    /// and aborted-delete rollback) outside the TPC-C mix.
    GuardedDelete {
        /// Abort threshold checked against the guard record.
        min: u64,
    },
    /// Positionally apply a precomputed effect: write `values[i]` to
    /// write-set entry `i` (`Some` ⇒ full-record write, `None` ⇒ delete).
    /// No reads, no logic, no aborts — the sharded facade's cross-shard
    /// commit path runs the real procedure once against the aligned epoch's
    /// state, then installs each shard's slice of the write set through one
    /// `Apply` sub-plan, so every shard commits the identical deterministic
    /// effect without voting. Fingerprint = 0 (the orchestrator reports the
    /// real procedure's fingerprint). Layout: reads = `[]`, writes = the
    /// shard's slice, `values.len() == writes.len()`.
    Apply {
        /// Per-write-position payloads; `Arc` keeps `Procedure: Clone`
        /// a pointer bump even when a sub-plan carries fat records.
        values: std::sync::Arc<[Option<crate::Value>]>,
        /// Bitmask of the shards that received a sub-plan of the same
        /// cross-shard transaction (bit `k` = shard `k`), `0` outside the
        /// sharded facade. Recovery's consistent-cut rule needs the full
        /// participant set *in the log*: an epoch's sub-plans replay only
        /// if every shard in this mask logged its copy, otherwise the
        /// stragglers are dropped uniformly (see `common::shard`).
        participants: u64,
    },
}

/// Reusable per-worker execution scratch: the byte workhorse plus every
/// buffer any procedure used to allocate per call (the RMW position indices
/// and the Delivery removal list). One `ExecScratch` lives in each engine
/// worker / exec thread and is reused across transactions, so the procedure
/// layer performs **zero** heap allocation per call in steady state — even
/// when a set overflows the stack-inline fast paths.
#[derive(Default)]
pub struct ExecScratch {
    /// Record-image workhorse buffer (reads copied in, writes staged out).
    pub bytes: Vec<u8>,
    /// RMW read-set position index (heap fallback of `sorted_positions`).
    idx_r: Vec<u32>,
    /// RMW write-set position index (heap fallback of `sorted_positions`).
    idx_w: Vec<u32>,
    /// Delivery's (customer key, order row) removal list (heap fallback).
    removals: Vec<(u64, u64)>,
}

impl ExecScratch {
    /// Fresh, empty scratch (equivalent to `Default`).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Execute `proc` against `access`, interpreting `reads`/`writes`/`scans`
/// as the declared sets of the surrounding transaction.
///
/// `scratch` is a caller-owned buffer bundle reused across transactions
/// (the "workhorse collection" pattern) so that 1,000-byte YCSB record
/// rewrites — and every overflow path — do not allocate per operation.
///
/// Returns `Ok(fingerprint)` on commit intent — a value derived from the
/// reads, which equivalence tests use to compare engines — or the abort
/// reason. Engine-induced errors from `access` propagate unchanged.
pub fn execute_procedure(
    proc: &Procedure,
    reads: &[crate::RecordId],
    writes: &[crate::RecordId],
    scans: &[crate::ScanRange],
    access: &mut dyn Access,
    scratch: &mut ExecScratch,
) -> Result<u64, AbortReason> {
    match proc {
        Procedure::ReadOnly => {
            let mut acc = 0u64;
            for i in 0..reads.len() {
                let mut c = 0u64;
                access.read(i, &mut |b| c = value::checksum(b))?;
                acc = acc.wrapping_mul(31).wrapping_add(c);
            }
            Ok(acc)
        }
        Procedure::ReadModifyWrite { delta } => {
            read_modify_write(*delta, reads, writes, access, scratch)
        }
        Procedure::BlindWrite { value: v } => {
            let bytes = &mut scratch.bytes;
            for w in 0..writes.len() {
                let len = access.write_len(w);
                bytes.clear();
                bytes.extend_from_slice(&v.to_le_bytes());
                bytes.resize(len, 0);
                access.write(w, bytes)?;
            }
            Ok(*v)
        }
        Procedure::SmallBank(sb) => small_bank(*sb, access, scratch),
        Procedure::TpcC(tp) => tpcc(*tp, reads, writes, access, scratch),
        Procedure::ProbeAll => {
            let mut acc = 0u64;
            for i in 0..reads.len() {
                let mut c = ABSENT_FINGERPRINT;
                access.read_maybe(i, &mut |b| c = value::checksum(b))?;
                acc = acc.wrapping_mul(31).wrapping_add(c);
            }
            Ok(acc)
        }
        Procedure::RangeAudit { expect_base } => {
            let base = *expect_base;
            let mut bad_value = false;
            let mut first = u64::MAX;
            let mut last = 0u64;
            let mut count = 0u64;
            for si in 0..scans.len() {
                count += access.scan(si, &mut |row, b| {
                    if value::get_u64(b, 0) != base.wrapping_add(row) {
                        bad_value = true;
                    }
                    first = first.min(row);
                    last = last.max(row);
                })?;
            }
            Ok(if bad_value {
                SCAN_POISON_VALUE
            } else if count == 0 {
                0
            } else if count != last - first + 1 {
                SCAN_POISON_GAP
            } else {
                range_audit_fingerprint(count, first)
            })
        }
        Procedure::InsertKeyed { base } => {
            let bytes = &mut scratch.bytes;
            for (w, rid) in writes.iter().enumerate() {
                let len = access.write_len(w);
                bytes.clear();
                bytes.extend_from_slice(&base.wrapping_add(rid.row).to_le_bytes());
                bytes.resize(len, 0);
                access.write(w, bytes)?;
            }
            Ok(*base)
        }
        Procedure::GuardedDelete { min } => {
            let g = access.read_u64(0)?;
            if g < *min {
                return Err(AbortReason::User);
            }
            for w in 0..writes.len() {
                access.delete(w)?;
            }
            Ok(g)
        }
        Procedure::Apply { values, .. } => {
            debug_assert_eq!(values.len(), writes.len(), "Apply: one value per write");
            for (w, v) in values.iter().enumerate() {
                match v {
                    Some(data) => access.write(w, data)?,
                    None => access.delete(w)?,
                }
            }
            Ok(0)
        }
    }
}

/// `ReadModifyWrite` body.
///
/// The naive formulation scanned `writes` per read-set entry and `reads`
/// per write-set entry — O(R·W) positional searches per transaction, which
/// is measurable on the 10-RMW YCSB figure. The read↔write mapping is now
/// precomputed once per call; the fold order (pure reads in read order,
/// then RMW old-values in write order, each mapping to the *first* matching
/// read position) is unchanged, so fingerprints are bit-identical.
fn read_modify_write(
    delta: u64,
    reads: &[crate::RecordId],
    writes: &[crate::RecordId],
    access: &mut dyn Access,
    scratch: &mut ExecScratch,
) -> Result<u64, AbortReason> {
    // Split borrows: the position indices stay borrowed across the byte
    // workhorse's uses below.
    let ExecScratch {
        bytes: scratch,
        idx_r,
        idx_w,
        ..
    } = scratch;
    let mut acc = 0u64;
    let blind = |access: &mut dyn Access, w: usize, scratch: &mut Vec<u8>| {
        // Blind write: full-size record with the delta prefix.
        let len = access.write_len(w);
        scratch.clear();
        scratch.extend_from_slice(&delta.to_le_bytes());
        scratch.resize(len, 0);
        access.write(w, scratch)
    };
    let rmw = |access: &mut dyn Access,
               r: usize,
               w: usize,
               scratch: &mut Vec<u8>,
               acc: &mut u64|
     -> Result<(), AbortReason> {
        scratch.clear();
        access.read(r, &mut |b| scratch.extend_from_slice(b))?;
        let old = value::get_u64(scratch, 0);
        value::put_u64(scratch, 0, old.wrapping_add(delta));
        access.write(w, scratch)?;
        *acc = acc.wrapping_mul(31).wrapping_add(old);
        Ok(())
    };
    // Fast path: identical declared sets (the 10-RMW / microbenchmark
    // shape) — every position is its own mapping, nothing is a pure read.
    if reads == writes {
        for w in 0..writes.len() {
            rmw(access, w, w, scratch, &mut acc)?;
        }
        return Ok(acc);
    }
    // General path: sort positional indices by (rid, position) once, so
    // membership and first-occurrence lookups are binary searches. Small
    // sets (all paper workloads) stay on stack buffers; bigger ones land in
    // the reusable scratch indices.
    const INLINE: usize = 64;
    let mut rbuf = [0u32; INLINE];
    let mut wbuf = [0u32; INLINE];
    let ridx = sorted_positions(reads, &mut rbuf, idx_r);
    let widx = sorted_positions(writes, &mut wbuf, idx_w);
    // Pass 1: pure reads (read-set entries that are not RMW targets).
    for (i, rid) in reads.iter().enumerate() {
        if first_position(widx, writes, rid).is_none() {
            let mut c = 0u64;
            access.read(i, &mut |b| c = value::checksum(b))?;
            acc = acc.wrapping_mul(31).wrapping_add(c);
        }
    }
    // Pass 2: read-modify-writes / blind writes.
    for (w, rid) in writes.iter().enumerate() {
        match first_position(ridx, reads, rid) {
            Some(r) => rmw(access, r, w, scratch, &mut acc)?,
            None => blind(access, w, scratch)?,
        }
    }
    Ok(acc)
}

/// Positions `0..set.len()` sorted by `(set[i], i)`; uses `buf` when the
/// set fits, else the reusable `heap` buffer (no allocation once its
/// capacity has grown to the workload's set sizes).
fn sorted_positions<'a>(
    set: &[crate::RecordId],
    buf: &'a mut [u32],
    heap: &'a mut Vec<u32>,
) -> &'a [u32] {
    let idx: &mut [u32] = if set.len() <= buf.len() {
        let idx = &mut buf[..set.len()];
        for (i, slot) in idx.iter_mut().enumerate() {
            *slot = i as u32;
        }
        idx
    } else {
        heap.clear();
        heap.extend(0..set.len() as u32);
        heap
    };
    // Stable tie order by position: first occurrence of each rid leads.
    idx.sort_unstable_by_key(|&i| (set[i as usize], i));
    idx
}

/// First (lowest-position) occurrence of `rid` in `set`, via the sorted
/// position index.
fn first_position(idx: &[u32], set: &[crate::RecordId], rid: &crate::RecordId) -> Option<usize> {
    let p = idx.partition_point(|&i| set[i as usize] < *rid);
    match idx.get(p) {
        Some(&i) if set[i as usize] == *rid => Some(i as usize),
        _ => None,
    }
}

fn write_u64(
    access: &mut dyn Access,
    idx: usize,
    v: u64,
    scratch: &mut Vec<u8>,
) -> Result<(), AbortReason> {
    let len = access.write_len(idx);
    scratch.clear();
    scratch.extend_from_slice(&v.to_le_bytes());
    scratch.resize(len, 0);
    access.write(idx, scratch)
}

fn small_bank(
    proc: SmallBankProc,
    access: &mut dyn Access,
    scratch: &mut ExecScratch,
) -> Result<u64, AbortReason> {
    let scratch = &mut scratch.bytes;
    match proc {
        SmallBankProc::Balance => {
            let s = access.read_u64(0)?;
            let c = access.read_u64(1)?;
            Ok(s.wrapping_add(c))
        }
        SmallBankProc::DepositChecking { v } => {
            let c = access.read_u64(0)?;
            write_u64(access, 0, c.wrapping_add(v), scratch)?;
            Ok(c)
        }
        SmallBankProc::TransactSaving { v } => {
            let s = access.read_u64(0)? as i64;
            let ns = s.wrapping_add(v);
            if ns < 0 {
                return Err(AbortReason::User);
            }
            write_u64(access, 0, ns as u64, scratch)?;
            Ok(s as u64)
        }
        SmallBankProc::Amalgamate => {
            let s0 = access.read_u64(0)?;
            let c0 = access.read_u64(1)?;
            let c1 = access.read_u64(2)?;
            write_u64(access, 0, 0, scratch)?;
            write_u64(access, 1, 0, scratch)?;
            write_u64(access, 2, c1.wrapping_add(s0).wrapping_add(c0), scratch)?;
            Ok(s0.wrapping_add(c0))
        }
        SmallBankProc::WriteCheck { v } => {
            // Balances are i64 semantics stored two's-complement in the u64
            // slot: checking may legitimately go negative here.
            let s = access.read_u64(0)? as i64;
            let c = access.read_u64(1)? as i64;
            let v = v as i64;
            let total = s.wrapping_add(c);
            let new_c = if v > total {
                // Overdraft: charge an extra penalty of 1.
                c.wrapping_sub(v).wrapping_sub(1)
            } else {
                c.wrapping_sub(v)
            };
            write_u64(access, 0, new_c as u64, scratch)?;
            Ok(total as u64)
        }
    }
}

fn tpcc(
    proc: TpcCProc,
    reads: &[crate::RecordId],
    writes: &[crate::RecordId],
    access: &mut dyn Access,
    scratch: &mut ExecScratch,
) -> Result<u64, AbortReason> {
    let ExecScratch {
        bytes: scratch,
        removals,
        ..
    } = scratch;
    match proc {
        TpcCProc::NewOrder { lines } => {
            // Bump the district's order counter (an RMW serialized across
            // every NewOrder of the district).
            let next = access.read_u64(0)?;
            write_u64(access, 0, next.wrapping_add(1), scratch)?;
            let cust = access.read_u64(1)?;
            // Insert the order record: the prefix encodes the customer
            // balance and line count so equivalence checks can audit
            // inserted rows; bytes 8..16 (when the record has room) carry
            // the customer's row id — the index key — so Delivery can find
            // the posting list this order must be removed from.
            let len = access.write_len(1);
            scratch.clear();
            scratch.extend_from_slice(
                &cust
                    .wrapping_mul(1_000)
                    .wrapping_add(lines as u64)
                    .to_le_bytes(),
            );
            if len >= 16 {
                scratch.extend_from_slice(&reads[1].row.to_le_bytes());
            }
            scratch.resize(len, 0);
            access.write(1, scratch)?;
            // Index maintenance: add the inserted order row under its
            // customer key (an RMW of the posting-list record, which is
            // what serializes this insert against index scanners on every
            // engine). Declared only when the workload runs with the
            // customer→orders index.
            if writes.len() > 2 {
                scratch.clear();
                access.read(2, &mut |b| scratch.extend_from_slice(b))?;
                // Failure is only reachable on a doomed optimistic
                // attempt's torn snapshot (see `crate::index`).
                let _ = crate::index::posting_insert(scratch, writes[1].row);
                access.write(2, scratch)?;
            }
            Ok(next.wrapping_mul(31).wrapping_add(cust))
        }
        TpcCProc::Payment { amount } => {
            let w = access.read_u64(0)?;
            let d = access.read_u64(1)?;
            let c = access.read_u64(2)?;
            write_u64(access, 0, w.wrapping_add(amount), scratch)?;
            write_u64(access, 1, d.wrapping_add(amount), scratch)?;
            write_u64(access, 2, c.wrapping_sub(amount), scratch)?;
            Ok(w.wrapping_mul(31)
                .wrapping_add(d)
                .wrapping_mul(31)
                .wrapping_add(c))
        }
        TpcCProc::OrderStatus => {
            let cust = access.read_u64(0)?;
            // The probed order may not have been inserted yet; absence is a
            // legitimate, serializable answer with its own fingerprint.
            let mut order_fp = ABSENT_FINGERPRINT;
            access.read_maybe(1, &mut |b| order_fp = value::checksum(b))?;
            Ok(cust.wrapping_mul(31).wrapping_add(order_fp))
        }
        TpcCProc::OrderHistory => {
            let cust = access.read_u64(0)?;
            let mut fp = cust;
            let count = access.scan(0, &mut |row, b| {
                fp = fp.wrapping_mul(31).wrapping_add(row ^ value::checksum(b));
            })?;
            Ok(fp.wrapping_mul(31).wrapping_add(count))
        }
        TpcCProc::CustomerStatus => {
            let cust = access.read_u64(0)?;
            let mut fp = cust;
            let count = access.index_scan(0, &mut |row, b| {
                fp = fp.wrapping_mul(31).wrapping_add(row ^ value::checksum(b));
            })?;
            Ok(fp.wrapping_mul(31).wrapping_add(count))
        }
        TpcCProc::Delivery => {
            // Position 0 is the delivery cursor; the following run of
            // positions sharing position 1's table are the order slots to
            // consume; any remaining tail positions are the posting lists
            // of the consumed orders' customers (index maintenance).
            let cursor = access.read_u64(0)?;
            let mut fp = cursor;
            let mut consumed = 0u64;
            let n = reads.len();
            let orders_end = if n > 1 {
                let order_table = reads[1].table;
                (2..n).find(|&i| reads[i].table != order_table).unwrap_or(n)
            } else {
                n
            };
            let maintain = orders_end < n;
            // (customer key, order row) of each consumed order, recorded so
            // the posting lists can be updated once each after the deletes.
            // Stack storage for the common delivery-batch sizes; the
            // reusable scratch fallback keeps even oversized batches
            // allocation-free in steady state (the same pattern as the RMW
            // position buffers above).
            const INLINE: usize = 32;
            let mut rbuf = [(0u64, 0u64); INLINE];
            let removals: &mut [(u64, u64)] = if maintain && orders_end - 1 > INLINE {
                removals.clear();
                removals.resize(orders_end - 1, (0, 0));
                removals
            } else {
                &mut rbuf
            };
            let mut nrem = 0usize;
            for (i, rid) in reads.iter().enumerate().take(orders_end).skip(1) {
                let mut c = ABSENT_FINGERPRINT;
                let mut cust_key = u64::MAX;
                let present = access.read_maybe(i, &mut |b| {
                    c = value::checksum(b);
                    if b.len() >= 16 {
                        cust_key = value::get_u64(b, 8);
                    }
                })?;
                fp = fp.wrapping_mul(31).wrapping_add(c);
                if present {
                    access.delete(i)?;
                    consumed += 1;
                    if maintain {
                        removals[nrem] = (cust_key, rid.row);
                        nrem += 1;
                    }
                }
            }
            for (p, list_rid) in writes.iter().enumerate().take(n).skip(orders_end) {
                let key = list_rid.row;
                scratch.clear();
                access.read(p, &mut |b| scratch.extend_from_slice(b))?;
                for &(cust, row) in removals[..nrem].iter().filter(|&&(cust, _)| cust == key) {
                    // Failure is only reachable on a doomed optimistic
                    // attempt's torn snapshot (see `crate::index`).
                    let _ = (cust, crate::index::posting_remove(scratch, row));
                }
                access.write(p, scratch)?;
            }
            write_u64(access, 0, cursor.wrapping_add(consumed), scratch)?;
            Ok(fp)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RecordId;

    /// Simple map-backed Access for procedure unit tests. Read slots hold
    /// `None` to model a record absent at the transaction's snapshot.
    struct MemAccess {
        read_vals: Vec<Option<Vec<u8>>>,
        written: Vec<Option<Vec<u8>>>,
        deleted: Vec<bool>,
        /// Rows served by `scan(0)`: `(row, payload-or-absent)` in key order.
        scan_rows: Vec<(u64, Option<Vec<u8>>)>,
        /// Rows served by `index_scan(0)`: `(row, payload-or-absent)` in
        /// ascending order (absent = listed member whose row is gone).
        index_rows: Vec<(u64, Option<Vec<u8>>)>,
        len: usize,
    }

    impl MemAccess {
        fn new(read_vals: Vec<u64>, n_writes: usize, len: usize) -> Self {
            Self {
                read_vals: read_vals
                    .into_iter()
                    .map(|v| Some(crate::value::of_u64(v, len).to_vec()))
                    .collect(),
                written: vec![None; n_writes],
                deleted: vec![false; n_writes],
                scan_rows: Vec::new(),
                index_rows: Vec::new(),
                len,
            }
        }

        fn with_scan_rows(mut self, rows: Vec<(u64, Option<u64>)>) -> Self {
            self.scan_rows = rows
                .into_iter()
                .map(|(row, v)| (row, v.map(|v| crate::value::of_u64(v, self.len).to_vec())))
                .collect();
            self
        }
        fn with_index_rows(mut self, rows: Vec<(u64, Option<u64>)>) -> Self {
            self.index_rows = rows
                .into_iter()
                .map(|(row, v)| (row, v.map(|v| crate::value::of_u64(v, self.len).to_vec())))
                .collect();
            self
        }
        fn with_absent(mut self, idx: usize) -> Self {
            if self.read_vals.len() <= idx {
                self.read_vals.resize(idx + 1, None);
            }
            self.read_vals[idx] = None;
            self
        }
        fn written_u64(&self, i: usize) -> u64 {
            value::get_u64(self.written[i].as_ref().unwrap(), 0)
        }
    }

    impl Access for MemAccess {
        fn read(&mut self, idx: usize, out: &mut dyn FnMut(&[u8])) -> Result<(), AbortReason> {
            out(self.read_vals[idx].as_ref().expect("read of absent record"));
            Ok(())
        }
        fn read_maybe(
            &mut self,
            idx: usize,
            out: &mut dyn FnMut(&[u8]),
        ) -> Result<bool, AbortReason> {
            match &self.read_vals[idx] {
                Some(v) => {
                    out(v);
                    Ok(true)
                }
                None => Ok(false),
            }
        }
        fn write(&mut self, idx: usize, data: &[u8]) -> Result<(), AbortReason> {
            self.written[idx] = Some(data.to_vec());
            self.deleted[idx] = false;
            Ok(())
        }
        fn delete(&mut self, idx: usize) -> Result<(), AbortReason> {
            self.deleted[idx] = true;
            self.written[idx] = None;
            Ok(())
        }
        fn scan(
            &mut self,
            idx: usize,
            out: &mut dyn FnMut(u64, &[u8]),
        ) -> Result<u64, AbortReason> {
            assert_eq!(idx, 0, "MemAccess models a single scan");
            let mut n = 0;
            for (row, v) in &self.scan_rows {
                if let Some(v) = v {
                    out(*row, v);
                    n += 1;
                }
            }
            Ok(n)
        }
        fn index_scan(
            &mut self,
            idx: usize,
            out: &mut dyn FnMut(u64, &[u8]),
        ) -> Result<u64, AbortReason> {
            assert_eq!(idx, 0, "MemAccess models a single index scan");
            let mut n = 0;
            for (row, v) in &self.index_rows {
                if let Some(v) = v {
                    out(*row, v);
                    n += 1;
                }
            }
            Ok(n)
        }
        fn write_len(&mut self, _idx: usize) -> usize {
            self.len
        }
    }

    fn rid(k: u64) -> RecordId {
        RecordId::new(0, k)
    }

    /// Shorthand for procedures that declare no key-range scans.
    fn exec_no_scans(
        proc: &Procedure,
        reads: &[RecordId],
        writes: &[RecordId],
        access: &mut dyn Access,
        scratch: &mut ExecScratch,
    ) -> Result<u64, AbortReason> {
        execute_procedure(proc, reads, writes, &[], access, scratch)
    }

    #[test]
    fn rmw_increments_prefix_and_preserves_tail() {
        let reads = vec![rid(1)];
        let writes = vec![rid(1)];
        let mut a = MemAccess::new(vec![41], 1, 16);
        let mut scratch = ExecScratch::new();
        exec_no_scans(
            &Procedure::ReadModifyWrite { delta: 1 },
            &reads,
            &writes,
            &mut a,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(a.written_u64(0), 42);
        assert_eq!(a.written[0].as_ref().unwrap().len(), 16);
    }

    #[test]
    fn rmw_blind_writes_undeclared_reads() {
        // Write-set entry not in the read set gets the delta blind-written.
        let reads = vec![];
        let writes = vec![rid(9)];
        let mut a = MemAccess::new(vec![], 1, 8);
        let mut scratch = ExecScratch::new();
        exec_no_scans(
            &Procedure::ReadModifyWrite { delta: 7 },
            &reads,
            &writes,
            &mut a,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(a.written_u64(0), 7);
    }

    #[test]
    fn read_only_folds_all_reads() {
        let reads = vec![rid(1), rid(2)];
        let mut a = MemAccess::new(vec![10, 20], 0, 8);
        let mut scratch = ExecScratch::new();
        let f1 = exec_no_scans(&Procedure::ReadOnly, &reads, &[], &mut a, &mut scratch).unwrap();
        let mut b = MemAccess::new(vec![10, 21], 0, 8);
        let f2 = exec_no_scans(&Procedure::ReadOnly, &reads, &[], &mut b, &mut scratch).unwrap();
        assert_ne!(f1, f2, "fingerprint must reflect read values");
    }

    #[test]
    fn blind_write_touches_every_write_slot() {
        let writes = vec![rid(1), rid(2), rid(3)];
        let mut a = MemAccess::new(vec![], 3, 8);
        let mut scratch = ExecScratch::new();
        exec_no_scans(
            &Procedure::BlindWrite { value: 5 },
            &[],
            &writes,
            &mut a,
            &mut scratch,
        )
        .unwrap();
        for i in 0..3 {
            assert_eq!(a.written_u64(i), 5);
        }
    }

    /// The pre-optimization `ReadModifyWrite` body, kept verbatim as the
    /// fingerprint reference: the precomputed-mapping version must be
    /// bit-identical on every input.
    fn rmw_reference(
        delta: u64,
        reads: &[RecordId],
        writes: &[RecordId],
        access: &mut dyn Access,
        scratch: &mut Vec<u8>,
    ) -> Result<u64, AbortReason> {
        let mut acc = 0u64;
        for (i, rid) in reads.iter().enumerate() {
            if !writes.contains(rid) {
                let mut c = 0u64;
                access.read(i, &mut |b| c = value::checksum(b))?;
                acc = acc.wrapping_mul(31).wrapping_add(c);
            }
        }
        for (w, rid) in writes.iter().enumerate() {
            if let Some(r) = reads.iter().position(|x| x == rid) {
                scratch.clear();
                access.read(r, &mut |b| scratch.extend_from_slice(b))?;
                let old = value::get_u64(scratch, 0);
                value::put_u64(scratch, 0, old.wrapping_add(delta));
                access.write(w, scratch)?;
                acc = acc.wrapping_mul(31).wrapping_add(old);
            } else {
                let len = access.write_len(w);
                scratch.clear();
                scratch.extend_from_slice(&delta.to_le_bytes());
                scratch.resize(len, 0);
                access.write(w, scratch)?;
            }
        }
        Ok(acc)
    }

    #[test]
    fn rmw_mapping_is_fingerprint_identical_to_reference() {
        // Shapes covering the identity fast path, partial overlap, pure
        // reads, blind writes, duplicates in both sets, and an oversized
        // set that spills off the stack buffers.
        let shapes: Vec<(Vec<u64>, Vec<u64>)> = vec![
            (vec![1, 2, 3], vec![1, 2, 3]),                 // identity
            (vec![1, 2, 3, 4, 5], vec![2, 4]),              // 2RMW-3R
            (vec![], vec![7, 8]),                           // all blind
            (vec![5, 5, 9], vec![5, 11]),                   // duplicate reads
            (vec![6, 9], vec![9, 9, 6]),                    // duplicate writes
            (vec![3, 1, 2], vec![2, 3]),                    // unsorted overlap
            ((0..100).collect(), (0..100).rev().collect()), // > stack buffer
        ];
        let mut rng = 0x1234_5678_9abc_def0u64;
        for (rkeys, wkeys) in shapes {
            let reads: Vec<RecordId> = rkeys.iter().map(|&k| rid(k)).collect();
            let writes: Vec<RecordId> = wkeys.iter().map(|&k| rid(k)).collect();
            let vals: Vec<u64> = rkeys
                .iter()
                .map(|_| {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    rng
                })
                .collect();
            let mut scratch = ExecScratch::new();
            let mut a = MemAccess::new(vals.clone(), writes.len(), 16);
            let got = exec_no_scans(
                &Procedure::ReadModifyWrite { delta: 3 },
                &reads,
                &writes,
                &mut a,
                &mut scratch,
            )
            .unwrap();
            let mut b = MemAccess::new(vals, writes.len(), 16);
            let want = rmw_reference(3, &reads, &writes, &mut b, &mut scratch.bytes).unwrap();
            assert_eq!(got, want, "fingerprint diverged on {rkeys:?}/{wkeys:?}");
            assert_eq!(
                a.written, b.written,
                "writes diverged on {rkeys:?}/{wkeys:?}"
            );
        }
    }

    #[test]
    fn tpcc_new_order_bumps_counter_and_inserts() {
        // reads = [district, customer], writes = [district, order].
        let reads = vec![rid(1), rid(2)];
        let writes = vec![rid(1), rid(9)];
        let mut a = MemAccess::new(vec![41, 7], 2, 16);
        let mut scratch = ExecScratch::new();
        let fp = exec_no_scans(
            &Procedure::TpcC(TpcCProc::NewOrder { lines: 5 }),
            &reads,
            &writes,
            &mut a,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(a.written_u64(0), 42, "district counter bumped");
        assert_eq!(
            a.written_u64(1),
            7 * 1_000 + 5,
            "order encodes (cust, lines)"
        );
        assert_eq!(a.written[1].as_ref().unwrap().len(), 16);
        assert_eq!(fp, 41u64.wrapping_mul(31).wrapping_add(7));
    }

    #[test]
    fn tpcc_payment_moves_money_across_tables() {
        let reads = vec![rid(1), rid(2), rid(3)];
        let writes = reads.clone();
        let mut a = MemAccess::new(vec![100, 200, 300], 3, 8);
        let mut scratch = ExecScratch::new();
        exec_no_scans(
            &Procedure::TpcC(TpcCProc::Payment { amount: 25 }),
            &reads,
            &writes,
            &mut a,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(a.written_u64(0), 125);
        assert_eq!(a.written_u64(1), 225);
        assert_eq!(a.written_u64(2), 275);
    }

    #[test]
    fn tpcc_order_status_distinguishes_absent_orders() {
        let reads = vec![rid(2), rid(9)];
        let mut scratch = ExecScratch::new();
        let mut present = MemAccess::new(vec![7, 1234], 0, 8);
        let fp_present = exec_no_scans(
            &Procedure::TpcC(TpcCProc::OrderStatus),
            &reads,
            &[],
            &mut present,
            &mut scratch,
        )
        .unwrap();
        let mut absent = MemAccess::new(vec![7], 0, 8).with_absent(1);
        let fp_absent = exec_no_scans(
            &Procedure::TpcC(TpcCProc::OrderStatus),
            &reads,
            &[],
            &mut absent,
            &mut scratch,
        )
        .unwrap();
        assert_ne!(fp_present, fp_absent);
        assert_eq!(
            fp_absent,
            7u64.wrapping_mul(31).wrapping_add(ABSENT_FINGERPRINT)
        );
    }

    #[test]
    fn tpcc_delivery_consumes_present_orders_and_advances_cursor() {
        // reads = writes = [cursor, order_a (present), order_b (absent)].
        let rids = vec![rid(0), rid(10), rid(11)];
        let mut a = MemAccess::new(vec![3, 777], 3, 16).with_absent(2);
        let mut scratch = ExecScratch::new();
        let fp = exec_no_scans(
            &Procedure::TpcC(TpcCProc::Delivery),
            &rids,
            &rids,
            &mut a,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(a.written_u64(0), 4, "cursor advances by consumed count");
        assert!(a.deleted[1], "present order consumed");
        assert!(!a.deleted[2], "absent slot untouched");
        let order_ck = value::checksum(&crate::value::of_u64(777, 16));
        let want = 3u64
            .wrapping_mul(31)
            .wrapping_add(order_ck)
            .wrapping_mul(31)
            .wrapping_add(ABSENT_FINGERPRINT);
        assert_eq!(fp, want, "fingerprint folds cursor + per-order outcomes");
    }

    #[test]
    fn order_history_folds_rows_payloads_and_count() {
        let reads = vec![rid(2)];
        let mut scratch = ExecScratch::new();
        let mut a =
            MemAccess::new(vec![7], 0, 8).with_scan_rows(vec![(10, Some(100)), (12, Some(200))]);
        let fp = exec_no_scans(
            &Procedure::TpcC(TpcCProc::OrderHistory),
            &reads,
            &[],
            &mut a,
            &mut scratch,
        )
        .unwrap();
        let c = |v: u64| value::checksum(&crate::value::of_u64(v, 8));
        let want = 7u64
            .wrapping_mul(31)
            .wrapping_add(10 ^ c(100))
            .wrapping_mul(31)
            .wrapping_add(12 ^ c(200))
            .wrapping_mul(31)
            .wrapping_add(2);
        assert_eq!(fp, want);
        // Membership changes (a phantom) change the fingerprint.
        let mut b = MemAccess::new(vec![7], 0, 8).with_scan_rows(vec![(10, Some(100)), (12, None)]);
        let fp2 = exec_no_scans(
            &Procedure::TpcC(TpcCProc::OrderHistory),
            &reads,
            &[],
            &mut b,
            &mut scratch,
        )
        .unwrap();
        assert_ne!(fp, fp2, "membership must be fingerprint-visible");
    }

    #[test]
    fn customer_status_folds_members_and_count() {
        let reads = vec![rid(2), rid(3)]; // [customer, posting list]
        let mut scratch = ExecScratch::new();
        let mut a = MemAccess::new(vec![7, 0], 0, 8)
            .with_index_rows(vec![(10, Some(100)), (12, Some(200))]);
        let fp = exec_no_scans(
            &Procedure::TpcC(TpcCProc::CustomerStatus),
            &reads,
            &[],
            &mut a,
            &mut scratch,
        )
        .unwrap();
        let c = |v: u64| value::checksum(&crate::value::of_u64(v, 8));
        let want = 7u64
            .wrapping_mul(31)
            .wrapping_add(10 ^ c(100))
            .wrapping_mul(31)
            .wrapping_add(12 ^ c(200))
            .wrapping_mul(31)
            .wrapping_add(2);
        assert_eq!(want, fp, "same fold as OrderHistory, over index members");
        // Membership changes (a phantom on the index key) change the
        // fingerprint.
        let mut b =
            MemAccess::new(vec![7, 0], 0, 8).with_index_rows(vec![(10, Some(100)), (12, None)]);
        let fp2 = exec_no_scans(
            &Procedure::TpcC(TpcCProc::CustomerStatus),
            &reads,
            &[],
            &mut b,
            &mut scratch,
        )
        .unwrap();
        assert_ne!(fp, fp2, "index membership must be fingerprint-visible");
    }

    #[test]
    fn tpcc_new_order_maintains_the_customer_index() {
        // reads = [district, customer, order_list], writes = [district,
        // order, order_list]: the third entry pair is the index maintenance.
        let reads = vec![
            RecordId::new(1, 0),
            RecordId::new(2, 5),
            RecordId::new(5, 5),
        ];
        let writes = vec![
            RecordId::new(1, 0),
            RecordId::new(3, 9),
            RecordId::new(5, 5),
        ];
        // 24-byte records: room for the customer row id at offset 8, and a
        // posting-list capacity of 2.
        let mut a = MemAccess::new(vec![41, 7, 0], 3, 24);
        let mut scratch = ExecScratch::new();
        let fp = exec_no_scans(
            &Procedure::TpcC(TpcCProc::NewOrder { lines: 5 }),
            &reads,
            &writes,
            &mut a,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(fp, 41u64.wrapping_mul(31).wrapping_add(7));
        assert_eq!(a.written_u64(0), 42, "district counter bumped");
        let order = a.written[1].as_ref().unwrap();
        assert_eq!(value::get_u64(order, 0), 7 * 1_000 + 5);
        assert_eq!(
            value::get_u64(order, 8),
            5,
            "order carries its customer row id (the index key)"
        );
        let list = a.written[2].as_ref().unwrap();
        assert_eq!(
            crate::index::posting_rows(list).collect::<Vec<_>>(),
            vec![9],
            "order row added under the customer key"
        );
    }

    #[test]
    fn tpcc_delivery_unmaintains_the_customer_index() {
        // reads = writes = [cursor, order (present), order (absent), list]:
        // the consumed order's row must leave its customer's posting list;
        // a member of another customer stays.
        let rids = vec![
            RecordId::new(4, 0),
            RecordId::new(3, 10),
            RecordId::new(3, 11),
            RecordId::new(5, 5),
        ];
        let mut a = MemAccess::new(vec![3], 4, 24).with_absent(2);
        // Order 10 belongs to customer key 5 (payload offset 8) …
        let mut order = crate::value::of_u64(777, 24).to_vec();
        value::put_u64(&mut order, 8, 5);
        a.read_vals[1] = Some(order.clone());
        // … and customer 5's list holds rows 10 and 99.
        let mut list = vec![0u8; 24];
        assert!(crate::index::posting_insert(&mut list, 10));
        assert!(crate::index::posting_insert(&mut list, 99));
        a.read_vals.push(Some(list));
        let mut scratch = ExecScratch::new();
        let fp = exec_no_scans(
            &Procedure::TpcC(TpcCProc::Delivery),
            &rids,
            &rids,
            &mut a,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(a.written_u64(0), 4, "cursor advances by consumed count");
        assert!(a.deleted[1], "present order consumed");
        assert!(!a.deleted[2], "absent slot untouched");
        let new_list = a.written[3].as_ref().unwrap();
        assert_eq!(
            crate::index::posting_rows(new_list).collect::<Vec<_>>(),
            vec![99],
            "consumed order removed from its customer's posting list"
        );
        // Fingerprint folds cursor + per-order outcomes, as before.
        let order_ck = value::checksum(&order);
        let want = 3u64
            .wrapping_mul(31)
            .wrapping_add(order_ck)
            .wrapping_mul(31)
            .wrapping_add(ABSENT_FINGERPRINT);
        assert_eq!(fp, want);
    }

    #[test]
    fn range_audit_classifies_scan_outcomes() {
        let mut scratch = ExecScratch::new();
        let audit = Procedure::RangeAudit { expect_base: 1_000 };
        let window = [crate::txn::ScanRange::new(0, 4, 7)];
        let mut run = |a: &mut MemAccess| {
            execute_procedure(&audit, &[], &[], &window, a, &mut scratch).unwrap()
        };
        // Consistent contiguous window.
        let mut a = MemAccess::new(vec![], 0, 8).with_scan_rows(vec![
            (4, Some(1_004)),
            (5, Some(1_005)),
            (6, Some(1_006)),
        ]);
        assert_eq!(run(&mut a), range_audit_fingerprint(3, 4));
        // Empty scan.
        let mut e = MemAccess::new(vec![], 0, 8).with_scan_rows(vec![(4, None)]);
        assert_eq!(run(&mut e), 0);
        // Gap (half-observed window) poisons.
        let mut g = MemAccess::new(vec![], 0, 8).with_scan_rows(vec![
            (4, Some(1_004)),
            (5, None),
            (6, Some(1_006)),
        ]);
        assert_eq!(run(&mut g), SCAN_POISON_GAP);
        // Wrong value poisons.
        let mut v = MemAccess::new(vec![], 0, 8).with_scan_rows(vec![(4, Some(999))]);
        assert_eq!(run(&mut v), SCAN_POISON_VALUE);
    }

    /// Access stub for the multi-scan RangeAudit: serves each declared scan
    /// from its own row list (MemAccess models a single scan only).
    struct TwoScanAccess {
        per_scan: Vec<Vec<(u64, u64)>>,
        len: usize,
    }

    impl Access for TwoScanAccess {
        fn read(&mut self, _idx: usize, _out: &mut dyn FnMut(&[u8])) -> Result<(), AbortReason> {
            unreachable!()
        }
        fn write(&mut self, _idx: usize, _data: &[u8]) -> Result<(), AbortReason> {
            unreachable!()
        }
        fn write_len(&mut self, _idx: usize) -> usize {
            self.len
        }
        fn scan(
            &mut self,
            idx: usize,
            out: &mut dyn FnMut(u64, &[u8]),
        ) -> Result<u64, AbortReason> {
            let rows = &self.per_scan[idx];
            for &(row, v) in rows {
                out(row, &crate::value::of_u64(v, self.len));
            }
            Ok(rows.len() as u64)
        }
    }

    #[test]
    fn range_audit_folds_adjacent_scans_as_one_window() {
        // Two adjacent declared ranges behave exactly like their union: a
        // consistent split window fingerprints as the whole window, and
        // scans observing *different* serial points (one full, one empty)
        // poison as a gap or truncate the count.
        let mut scratch = ExecScratch::new();
        let audit = Procedure::RangeAudit { expect_base: 100 };
        let halves = [
            crate::txn::ScanRange::new(0, 4, 6),
            crate::txn::ScanRange::new(0, 6, 8),
        ];
        let full: Vec<(u64, u64)> = (4..8).map(|r| (r, 100 + r)).collect();
        let mut consistent = TwoScanAccess {
            per_scan: vec![full[..2].to_vec(), full[2..].to_vec()],
            len: 8,
        };
        assert_eq!(
            execute_procedure(&audit, &[], &[], &halves, &mut consistent, &mut scratch).unwrap(),
            range_audit_fingerprint(4, 4)
        );
        let mut empty = TwoScanAccess {
            per_scan: vec![vec![], vec![]],
            len: 8,
        };
        assert_eq!(
            execute_procedure(&audit, &[], &[], &halves, &mut empty, &mut scratch).unwrap(),
            0
        );
        // First half full, second half empty: the union is not the whole
        // window — a cross-range phantom — and must not fingerprint as
        // either legal outcome.
        let mut torn = TwoScanAccess {
            per_scan: vec![full[..2].to_vec(), vec![]],
            len: 8,
        };
        let fp = execute_procedure(&audit, &[], &[], &halves, &mut torn, &mut scratch).unwrap();
        assert_ne!(fp, range_audit_fingerprint(4, 4));
        assert_ne!(fp, 0);
    }

    #[test]
    fn insert_keyed_writes_row_keyed_values() {
        let writes = vec![rid(7), rid(9)];
        let mut a = MemAccess::new(vec![], 2, 16);
        let mut scratch = ExecScratch::new();
        let fp = exec_no_scans(
            &Procedure::InsertKeyed { base: 50 },
            &[],
            &writes,
            &mut a,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(fp, 50);
        assert_eq!(a.written_u64(0), 57);
        assert_eq!(a.written_u64(1), 59);
        assert_eq!(a.written[1].as_ref().unwrap().len(), 16);
    }

    #[test]
    fn probe_all_folds_presence_and_absence() {
        let reads = vec![rid(1), rid(2)];
        let mut a = MemAccess::new(vec![7], 0, 8).with_absent(1);
        let mut scratch = ExecScratch::new();
        let fp = exec_no_scans(&Procedure::ProbeAll, &reads, &[], &mut a, &mut scratch).unwrap();
        let c = value::checksum(&crate::value::of_u64(7, 8));
        assert_eq!(fp, c.wrapping_mul(31).wrapping_add(ABSENT_FINGERPRINT));
    }

    #[test]
    fn guarded_delete_aborts_before_touching_anything() {
        let reads = vec![rid(0)];
        let writes = vec![rid(5), rid(6)];
        let mut a = MemAccess::new(vec![4], 2, 8);
        let mut scratch = ExecScratch::new();
        let r = exec_no_scans(
            &Procedure::GuardedDelete { min: 5 },
            &reads,
            &writes,
            &mut a,
            &mut scratch,
        );
        assert_eq!(r.unwrap_err(), AbortReason::User);
        assert!(a.deleted.iter().all(|d| !d), "abort precedes every delete");
    }

    #[test]
    fn guarded_delete_deletes_every_target_when_guard_passes() {
        let reads = vec![rid(0)];
        let writes = vec![rid(5), rid(6)];
        let mut a = MemAccess::new(vec![9], 2, 8);
        let mut scratch = ExecScratch::new();
        let fp = exec_no_scans(
            &Procedure::GuardedDelete { min: 5 },
            &reads,
            &writes,
            &mut a,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(fp, 9, "fingerprint is the guard value");
        assert!(a.deleted.iter().all(|d| *d));
    }

    #[test]
    fn apply_writes_and_deletes_positionally() {
        let writes = vec![rid(5), rid(6), rid(7)];
        let values: std::sync::Arc<[Option<crate::Value>]> = vec![
            Some(crate::value::of_u64(11, 8)),
            None,
            Some(crate::value::of_u64(13, 8)),
        ]
        .into();
        let mut a = MemAccess::new(vec![], 3, 8);
        let mut scratch = ExecScratch::new();
        let fp = exec_no_scans(
            &Procedure::Apply {
                values,
                participants: 0,
            },
            &[],
            &writes,
            &mut a,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(fp, 0, "Apply carries no fingerprint of its own");
        assert_eq!(a.written_u64(0), 11);
        assert!(a.deleted[1], "None applies as a delete");
        assert_eq!(a.written_u64(2), 13);
    }

    #[test]
    fn smallbank_balance_sums() {
        let mut a = MemAccess::new(vec![30, 12], 0, 8);
        let mut scratch = ExecScratch::new();
        let got = small_bank(SmallBankProc::Balance, &mut a, &mut scratch).unwrap();
        assert_eq!(got, 42);
    }

    #[test]
    fn smallbank_deposit_adds() {
        let mut a = MemAccess::new(vec![100], 1, 8);
        let mut scratch = ExecScratch::new();
        small_bank(
            SmallBankProc::DepositChecking { v: 25 },
            &mut a,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(a.written_u64(0), 125);
    }

    #[test]
    fn smallbank_transact_saving_aborts_on_overdraft() {
        let mut a = MemAccess::new(vec![10], 1, 8);
        let mut scratch = ExecScratch::new();
        let r = small_bank(
            SmallBankProc::TransactSaving { v: -11 },
            &mut a,
            &mut scratch,
        );
        assert_eq!(r.unwrap_err(), AbortReason::User);
        assert!(a.written[0].is_none(), "aborted txn must not write");
    }

    #[test]
    fn smallbank_transact_saving_allows_exact_zero() {
        let mut a = MemAccess::new(vec![10], 1, 8);
        let mut scratch = ExecScratch::new();
        small_bank(
            SmallBankProc::TransactSaving { v: -10 },
            &mut a,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(a.written_u64(0), 0);
    }

    #[test]
    fn smallbank_amalgamate_moves_all_funds() {
        let mut a = MemAccess::new(vec![5, 7, 100], 3, 8);
        let mut scratch = ExecScratch::new();
        small_bank(SmallBankProc::Amalgamate, &mut a, &mut scratch).unwrap();
        assert_eq!(a.written_u64(0), 0);
        assert_eq!(a.written_u64(1), 0);
        assert_eq!(a.written_u64(2), 112);
    }

    #[test]
    fn smallbank_write_check_penalizes_overdraft() {
        // total 10, check of 15 → overdraft: checking = 4 - 15 - 1 = -12.
        let mut a = MemAccess::new(vec![6, 4], 1, 8);
        let mut scratch = ExecScratch::new();
        small_bank(SmallBankProc::WriteCheck { v: 15 }, &mut a, &mut scratch).unwrap();
        assert_eq!(a.written_u64(0) as i64, -12);
    }

    #[test]
    fn smallbank_write_check_normal_case_may_go_negative_without_penalty() {
        // total 20 covers the 15 check; checking alone goes to -1, no penalty.
        let mut a = MemAccess::new(vec![6, 14], 1, 8);
        let mut scratch = ExecScratch::new();
        small_bank(SmallBankProc::WriteCheck { v: 15 }, &mut a, &mut scratch).unwrap();
        assert_eq!(a.written_u64(0) as i64, -1);
    }
}
