//! Epoch-stamped, checksummed snapshots of table state — what bounds
//! WAL replay.
//!
//! A checkpoint is the durable layer's answer to "replay is unbounded":
//! once a snapshot of the full committed state as of epoch `e` is on
//! disk, recovery becomes restore-the-checkpoint then replay only the
//! log suffix stamped `>= e`, and every sealed segment older than `e`
//! can be reclaimed via [`Wal::truncate_before`](crate::wal::Wal::truncate_before).
//!
//! # On-disk format
//!
//! Checkpoints live in the WAL directory, one file per checkpoint:
//!
//! ```text
//! chk-NNNNNNNN.ckp := magic "BOHMCKP1",
//!                     epoch u64, record_count u64,
//!                     (table u32, row u64, len u32, bytes)*,
//!                     fnv64(everything after the magic) u64
//! MANIFEST         := magic "BOHMMAN1", epoch u64, fnv64(epoch) u64
//! ```
//!
//! Both files are written **temp-file → fsync → rename → dir-fsync**, so
//! a crash at any point leaves either the previous checkpoint intact or
//! the new one complete — never a half state:
//!
//! * crash before rename: the `.tmp` file is ignored by recovery;
//! * crash after the checkpoint's rename but before the manifest's: the
//!   manifest still names the previous checkpoint, and
//!   [`load_latest`] *also* scans for newer valid checkpoint files, so
//!   the completed snapshot is found anyway;
//! * a torn or corrupt manifest (or checkpoint) fails its checksum and
//!   recovery falls back to the newest checkpoint file that validates —
//!   worst case the previous checkpoint plus a longer replay.
//!
//! Secondary-index posting lists are ordinary table records, so they are
//! snapshotted and restored like any other row — recovery restores
//! *through* the indexes without special cases.
//!
//! # Restore is engine-generic
//!
//! [`restore_into`] replays the snapshot through the engine's normal
//! write path as [`Procedure::Apply`] transactions: snapshotted rows are
//! full-record writes, and rows the catalog seeds but the snapshot lacks
//! are deletes (the snapshot is the *complete* present set as of its
//! epoch). Any [`BatchEngine`] can therefore be checkpoint-restored with
//! zero store-specific code.

use crate::engine::{BatchEngine, Session};
use crate::txn::Txn;
use crate::types::RecordId;
use crate::Procedure;
use std::collections::HashSet;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// First 8 bytes of every checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"BOHMCKP1";
/// First 8 bytes of the manifest file.
pub const MANIFEST_MAGIC: [u8; 8] = *b"BOHMMAN1";
/// Name of the manifest file tying the current checkpoint epoch to the
/// log (co-located with the segments in the WAL directory).
pub const MANIFEST_NAME: &str = "MANIFEST";

/// A loaded (or about-to-be-written) snapshot: the complete present
/// record set as of `epoch`, i.e. the cumulative effect of every batch
/// stamped with an epoch `< epoch`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// Replay boundary: batches stamped `>= epoch` are the suffix to
    /// replay on top of this snapshot.
    pub epoch: u64,
    /// Every present record and its full committed payload.
    pub records: Vec<(RecordId, Box<[u8]>)>,
}

fn checkpoint_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("chk-{epoch:08}.ckp"))
}

/// Parse `chk-NNNNNNNN.ckp` back to its epoch.
fn checkpoint_epoch(name: &str) -> Option<u64> {
    name.strip_prefix("chk-")?
        .strip_suffix(".ckp")?
        .parse()
        .ok()
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Durably record a directory-entry change (no-op where directories
/// cannot be fsynced).
fn sync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

/// Write `bytes` to `path` atomically: temp file in the same directory,
/// fsync, rename over the target, fsync the directory.
fn write_atomic(dir: &Path, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    sync_dir(dir)
}

impl Checkpoint {
    /// Serialize and atomically write this snapshot as
    /// `chk-{epoch}.ckp`, then point the manifest at it. Returns the
    /// checkpoint file's path.
    pub fn write(&self, dir: &Path) -> io::Result<PathBuf> {
        let mut buf = Vec::with_capacity(64 + self.records.len() * 32);
        buf.extend_from_slice(&CHECKPOINT_MAGIC);
        buf.extend_from_slice(&self.epoch.to_le_bytes());
        buf.extend_from_slice(&(self.records.len() as u64).to_le_bytes());
        for (rid, data) in &self.records {
            buf.extend_from_slice(&rid.table.0.to_le_bytes());
            buf.extend_from_slice(&rid.row.to_le_bytes());
            buf.extend_from_slice(&(data.len() as u32).to_le_bytes());
            buf.extend_from_slice(data);
        }
        let sum = fnv64(&buf[CHECKPOINT_MAGIC.len()..]);
        buf.extend_from_slice(&sum.to_le_bytes());
        let path = checkpoint_path(dir, self.epoch);
        write_atomic(dir, &path, &buf)?;
        write_manifest(dir, self.epoch)?;
        Ok(path)
    }

    /// Decode one checkpoint file; `None` when it is torn, truncated or
    /// fails its checksum (recovery then falls back to an older file).
    fn decode(bytes: &[u8]) -> Option<Self> {
        let m = CHECKPOINT_MAGIC.len();
        if bytes.len() < m + 24 || bytes[..m] != CHECKPOINT_MAGIC {
            return None;
        }
        let body = &bytes[m..bytes.len() - 8];
        let sum = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().ok()?);
        if fnv64(body) != sum {
            return None;
        }
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
            let s = body.get(*pos..*pos + n)?;
            *pos += n;
            Some(s)
        };
        let epoch = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?);
        let count = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?) as usize;
        // Each record needs ≥ 16 header bytes; reject counts the body
        // cannot hold before allocating.
        if count.saturating_mul(16) > body.len() - pos {
            return None;
        }
        let mut records = Vec::with_capacity(count);
        for _ in 0..count {
            let table = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
            let row = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?);
            let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
            records.push((RecordId::new(table, row), take(&mut pos, len)?.into()));
        }
        (pos == body.len()).then_some(Self { epoch, records })
    }
}

/// Atomically (re)write the manifest naming `epoch` as the covered
/// checkpoint.
fn write_manifest(dir: &Path, epoch: u64) -> io::Result<()> {
    let mut buf = Vec::with_capacity(24);
    buf.extend_from_slice(&MANIFEST_MAGIC);
    buf.extend_from_slice(&epoch.to_le_bytes());
    buf.extend_from_slice(&fnv64(&epoch.to_le_bytes()).to_le_bytes());
    write_atomic(dir, &dir.join(MANIFEST_NAME), &buf)
}

/// Read the manifest's checkpoint epoch; `None` when absent, torn or
/// checksum-failing. The manifest ties the covered epoch to the log
/// (first live segment holds only batches `>= epoch`) for diagnostics
/// and tooling — recovery itself trusts the newest *validating*
/// checkpoint file, so a manifest that lags one rename behind (crash
/// between the checkpoint's rename and the manifest's) or is torn never
/// costs recovery the newer snapshot.
pub fn manifest_epoch(dir: &Path) -> Option<u64> {
    let bytes = fs::read(dir.join(MANIFEST_NAME)).ok()?;
    let m = MANIFEST_MAGIC.len();
    if bytes.len() != m + 16 || bytes[..m] != MANIFEST_MAGIC {
        return None;
    }
    let epoch = u64::from_le_bytes(bytes[m..m + 8].try_into().ok()?);
    let sum = u64::from_le_bytes(bytes[m + 8..].try_into().ok()?);
    (fnv64(&epoch.to_le_bytes()) == sum).then_some(epoch)
}

/// Load the newest usable checkpoint in `dir`, or `None` when no valid
/// checkpoint exists (fresh log, or every candidate is damaged — replay
/// then starts from the seeded state).
///
/// The scan is the authority, not the manifest: every `chk-*.ckp` file
/// is tried newest-first and the first that validates end-to-end wins.
/// A crash between the checkpoint rename and the manifest rename is
/// therefore still recovered to the *new* checkpoint, and a torn or
/// corrupt checkpoint file only costs the fall-back to the previous one
/// (plus the longer replay its older epoch implies).
pub fn load_latest(dir: &Path) -> io::Result<Option<Checkpoint>> {
    let mut epochs: Vec<u64> = Vec::new();
    match fs::read_dir(dir) {
        Ok(entries) => {
            for entry in entries {
                let name = entry?.file_name();
                if let Some(e) = name.to_str().and_then(checkpoint_epoch) {
                    epochs.push(e);
                }
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    }
    epochs.sort_unstable();
    for e in epochs.into_iter().rev() {
        if let Ok(bytes) = fs::read(checkpoint_path(dir, e)) {
            if let Some(ckp) = Checkpoint::decode(&bytes) {
                return Ok(Some(ckp));
            }
        }
    }
    Ok(None)
}

/// Replay a snapshot into a (freshly started, seeded) engine through its
/// normal write path: every snapshotted record becomes a full-record
/// `Apply` write, and every row of `seeded_rows` (per-table seeded row
/// counts — the rows the engine preloads at start) that the snapshot
/// does **not** contain becomes an `Apply` delete. After this, the
/// engine's state equals the checkpointed state exactly, secondary-index
/// posting lists included (they are ordinary records).
pub fn restore_into<E: BatchEngine + ?Sized>(ckp: &Checkpoint, seeded_rows: &[u64], engine: &E) {
    /// Writes per restore transaction — a batch-friendly size that keeps
    /// `Apply` sub-plans well under any record-size cap.
    const CHUNK: usize = 512;
    let mut session = engine.open_session();
    let mut rids = Vec::with_capacity(CHUNK);
    let mut values: Vec<Option<crate::Value>> = Vec::with_capacity(CHUNK);
    let mut flush = |rids: &mut Vec<RecordId>, values: &mut Vec<Option<crate::Value>>| {
        if rids.is_empty() {
            return;
        }
        session.submit(Txn::new(
            vec![],
            std::mem::take(rids),
            Procedure::Apply {
                values: std::mem::take(values).into(),
                participants: 0,
            },
        ));
        while session.in_flight() > 0 {
            session.reap();
        }
    };
    let mut present: HashSet<RecordId> = HashSet::with_capacity(ckp.records.len());
    for (rid, data) in &ckp.records {
        present.insert(*rid);
        rids.push(*rid);
        values.push(Some(crate::Value::from(&data[..])));
        if rids.len() >= CHUNK {
            flush(&mut rids, &mut values);
        }
    }
    // Seeded-but-absent rows: present at engine start, deleted by the
    // time of the snapshot — restore must delete them too.
    for (table, &rows) in seeded_rows.iter().enumerate() {
        for row in 0..rows {
            let rid = RecordId::new(table as u32, row);
            if !present.contains(&rid) {
                rids.push(rid);
                values.push(None);
                if rids.len() >= CHUNK {
                    flush(&mut rids, &mut values);
                }
            }
        }
    }
    flush(&mut rids, &mut values);
    engine.quiesce();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("bohm-ckp-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample(epoch: u64, salt: u8) -> Checkpoint {
        Checkpoint {
            epoch,
            records: (0..40u64)
                .map(|r| {
                    let data: Box<[u8]> = vec![salt ^ r as u8; 8].into();
                    (RecordId::new((r % 3) as u32, r), data)
                })
                .collect(),
        }
    }

    #[test]
    fn roundtrips_through_disk() {
        let dir = tmpdir("roundtrip");
        let ckp = sample(7, 0x5A);
        ckp.write(&dir).unwrap();
        let got = load_latest(&dir).unwrap().expect("checkpoint present");
        assert_eq!(got, ckp);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_prefers_newest_but_survives_being_stale() {
        let dir = tmpdir("stale-manifest");
        sample(3, 1).write(&dir).unwrap();
        let newer = sample(9, 2);
        newer.write(&dir).unwrap();
        // Crash between checkpoint rename and manifest rename: point the
        // manifest back at the old epoch. The scan must still find 9.
        write_manifest(&dir, 3).unwrap();
        assert_eq!(load_latest(&dir).unwrap().unwrap().epoch, 9);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damage_falls_back_to_previous_checkpoint() {
        let dir = tmpdir("fallback");
        let old = sample(3, 1);
        old.write(&dir).unwrap();
        let newer = sample(9, 2);
        let path = newer.write(&dir).unwrap();
        // Tear the newest checkpoint file mid-payload.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let got = load_latest(&dir).unwrap().unwrap();
        assert_eq!(got, old, "torn newest file falls back to the previous");
        // Torn manifest on top: still recoverable by scan.
        fs::write(dir.join(MANIFEST_NAME), b"BOHMMAN1ga").unwrap();
        assert_eq!(load_latest(&dir).unwrap().unwrap(), old);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partial_temp_file_is_ignored() {
        let dir = tmpdir("tmpfile");
        let ckp = sample(5, 3);
        ckp.write(&dir).unwrap();
        // Crash mid-write of the next checkpoint: a dangling .tmp file.
        fs::write(dir.join("chk-00000009.tmp"), b"half a checkpoi").unwrap();
        assert_eq!(load_latest(&dir).unwrap().unwrap(), ckp);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_dir_has_no_checkpoint() {
        let dir = tmpdir("empty");
        assert!(load_latest(&dir).unwrap().is_none());
        let missing = dir.join("never-created");
        assert!(load_latest(&missing).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bitflip_fails_checksum() {
        let dir = tmpdir("bitflip");
        let path = sample(4, 9).write(&dir).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(load_latest(&dir).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }
}
