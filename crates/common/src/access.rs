//! The engine-agnostic data access interface.
//!
//! Stored procedures run against an [`Access`] implementation supplied by
//! whichever engine is executing the transaction. Reads and writes are
//! addressed **positionally** — "the i-th entry of my declared read set /
//! write set" — because every engine already holds the transaction's declared
//! sets and several (BOHM in particular) pre-resolve each position to a
//! version pointer during the concurrency-control phase (paper §3.2.3's
//! read-set optimization). Positional addressing makes that resolution free
//! at execution time.

/// Why a transaction attempt did not commit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AbortReason {
    /// Engine-induced: concurrency-control conflict (validation failure,
    /// write-write conflict, cascaded abort of a commit dependency, …).
    /// Optimistic engines retry these (paper §4: "all our optimistic
    /// baselines are configured to retry transactions in the event of an
    /// abort induced by concurrency control").
    Conflict,
    /// Logic abort requested by the procedure itself (e.g. SmallBank
    /// overdraft). Never retried; counts as a completed decision.
    User,
    /// BOHM-internal: the version this read resolved to has not been
    /// produced yet; the executor must first evaluate the producing
    /// transaction (paper §3.3.1 "read dependencies"). Carries the
    /// log-timestamp of the producing transaction.
    NotReady(u64),
}

impl AbortReason {
    /// True for aborts that the harness should retry (engine conflicts).
    #[inline]
    pub fn is_retryable(self) -> bool {
        matches!(self, AbortReason::Conflict)
    }
}

/// Positional record access for one executing transaction.
///
/// `idx` is an index into the transaction's declared read set (for
/// [`read`](Access::read)) or write set (for [`write`](Access::write)).
/// Implementations panic on out-of-range indices — a procedure accessing a
/// record it did not declare is a programming error that would silently
/// break every engine's correctness argument.
pub trait Access {
    /// Read the current (engine-visible) value of read-set entry `idx` and
    /// hand it to `out`. The callback style lets engines expose borrowed
    /// storage without copying.
    ///
    /// Panics if the record does not exist at the transaction's snapshot —
    /// procedures that tolerate absence use [`read_maybe`](Self::read_maybe).
    fn read(&mut self, idx: usize, out: &mut dyn FnMut(&[u8])) -> Result<(), AbortReason>;

    /// Absence-tolerant read of read-set entry `idx`.
    ///
    /// Returns `Ok(true)` and calls `out` with the payload if the record
    /// exists at the transaction's snapshot, `Ok(false)` (without calling
    /// `out`) if it does not — a key never inserted, not yet inserted at
    /// this transaction's position in the serial order, or deleted. Engines
    /// that support record insertion override this; absent reads
    /// participate in concurrency control exactly like present ones (they
    /// must be validated/serialized so that "absent" is the answer *some*
    /// serial order gives).
    fn read_maybe(&mut self, idx: usize, out: &mut dyn FnMut(&[u8])) -> Result<bool, AbortReason> {
        self.read(idx, out).map(|()| true)
    }

    /// Write `data` as the new value of write-set entry `idx`. `data` must
    /// be exactly the record's size (engines enforce this).
    fn write(&mut self, idx: usize, data: &[u8]) -> Result<(), AbortReason>;

    /// Delete write-set entry `idx`: after this transaction, the record no
    /// longer exists (subsequent reads observe absence, and the slot is
    /// reclaimable by the engine's substrate — presence flag cleared, or a
    /// tombstone version that garbage collection prunes).
    ///
    /// Deletes are *blind*, like writes: no prior read of the record is
    /// required, and deleting an already-absent record is a serialized
    /// no-op (the observed absence participates in concurrency control the
    /// same way an absent read does). A delete must be the entry's **only**
    /// operation in the transaction: engines that publish resolutions
    /// eagerly (BOHM fills the pre-installed placeholder in place, where a
    /// published result may already have been consumed by a later-timestamp
    /// reader) can neither un-delete nor retract a write, so mixing
    /// `write` and `delete` on one entry is unsupported in either order —
    /// re-insert or delete from a later transaction instead.
    ///
    /// The logic-abort contract extends to deletes: a procedure must decide
    /// a user abort before its first write *or delete* (in-place engines
    /// have no undo log).
    ///
    /// The default implementation panics — engines that support the record
    /// lifecycle override it, and procedures that delete are only run on
    /// such engines.
    fn delete(&mut self, idx: usize) -> Result<(), AbortReason> {
        let _ = idx;
        panic!("this Access implementation does not support record deletes");
    }

    /// Key-range scan: invoke `out(row, payload)` for every record that
    /// exists in scan-set entry `idx` (a declared
    /// [`ScanRange`](crate::txn::ScanRange)), in ascending key order, and
    /// return the number of present rows.
    ///
    /// A scan is a predicate read, and engines guarantee **phantom
    /// protection**: the result is the range's membership at the
    /// transaction's position in the serial order — a concurrent insert
    /// into or delete from the range either orders entirely before the
    /// scan (and is observed) or entirely after it (and is not), never
    /// halfway. Each engine enforces this with its own mechanism (range
    /// locks covering absent slots, per-slot read validation, commit-time
    /// range re-resolution, or BOHM's timestamp-ordered CC pass).
    ///
    /// The scanned range must not overlap the transaction's own write set:
    /// engines disagree on whether a scan observes the transaction's own
    /// uncommitted writes, so procedures must not rely on either behaviour.
    /// Ranges must also lie within the table's declared capacity for
    /// portability: array-backed engines (and the serial oracle) panic on
    /// an over-capacity range, while dynamically-indexed engines treat
    /// rows beyond the preload as ordinarily absent — only growable-table
    /// workloads, which run on the latter exclusively, may exceed it.
    ///
    /// The default implementation panics — engines that support range
    /// scans override it, and scanning procedures only run on such engines.
    fn scan(&mut self, idx: usize, out: &mut dyn FnMut(u64, &[u8])) -> Result<u64, AbortReason> {
        let _ = (idx, out);
        panic!("this Access implementation does not support range scans");
    }

    /// Secondary-index scan: invoke `out(row, payload)` for every live
    /// member row of index-scan-set entry `idx` (a declared
    /// [`IndexScan`](crate::txn::IndexScan)), in ascending row order, and
    /// return the number of rows emitted.
    ///
    /// The scanned key's **posting-list record** (read-set entry
    /// `IndexScan::list`, encoded per [`crate::index`]) is read through the
    /// engine's ordinary read machinery — that read is the index key's
    /// concurrency control — and each member row is then read at the same
    /// snapshot. Phantom protection therefore holds at the *key*
    /// granularity: a concurrent transaction that adds a row to or removes
    /// a row from the key's posting set must write the posting-list
    /// record, which every engine serializes against the scan (lock
    /// conflict, TID validation failure, commit-time re-resolution, or
    /// BOHM's timestamp order).
    ///
    /// **Covering-writer contract:** any transaction that inserts, deletes
    /// or updates a row of an indexed table must declare (and write) the
    /// affected posting-list record in the same transaction. That write is
    /// what serializes in-place engines' member-row reads — 2PL index
    /// scanners read member payloads under the posting-list lock alone —
    /// and what keeps list membership and row existence atomic everywhere
    /// else. A listed-but-absent member row (possible only on a torn
    /// snapshot of a doomed optimistic attempt, or if the contract is
    /// violated) is skipped, not an error.
    ///
    /// The default implementation panics — engines that support secondary
    /// indexes override it, and index-scanning procedures only run on such
    /// engines.
    fn index_scan(
        &mut self,
        idx: usize,
        out: &mut dyn FnMut(u64, &[u8]),
    ) -> Result<u64, AbortReason> {
        let _ = (idx, out);
        panic!("this Access implementation does not support secondary-index scans");
    }

    /// Size in bytes of the record behind write-set entry `idx` (fixed per
    /// table). Lets procedures construct full-size payloads for blind
    /// writes without reading the record first.
    fn write_len(&mut self, idx: usize) -> usize;

    /// Convenience: read the little-endian `u64` prefix of read-set entry
    /// `idx` (every paper workload stores its semantic value there).
    fn read_u64(&mut self, idx: usize) -> Result<u64, AbortReason> {
        let mut v = 0u64;
        self.read(idx, &mut |b| v = crate::value::get_u64(b, 0))?;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial in-memory Access used to test default methods.
    struct VecAccess {
        rows: Vec<Vec<u8>>,
    }

    impl Access for VecAccess {
        fn read(&mut self, idx: usize, out: &mut dyn FnMut(&[u8])) -> Result<(), AbortReason> {
            out(&self.rows[idx]);
            Ok(())
        }
        fn write(&mut self, idx: usize, data: &[u8]) -> Result<(), AbortReason> {
            self.rows[idx] = data.to_vec();
            Ok(())
        }
        fn write_len(&mut self, idx: usize) -> usize {
            self.rows[idx].len()
        }
    }

    #[test]
    fn read_u64_default_reads_prefix() {
        let mut a = VecAccess {
            rows: vec![crate::value::of_u64(99, 16).to_vec()],
        };
        assert_eq!(a.read_u64(0).unwrap(), 99);
    }

    #[test]
    fn read_maybe_defaults_to_present() {
        let mut a = VecAccess {
            rows: vec![crate::value::of_u64(7, 8).to_vec()],
        };
        let mut seen = 0;
        assert!(a
            .read_maybe(0, &mut |b| seen = crate::value::get_u64(b, 0))
            .unwrap());
        assert_eq!(seen, 7);
    }

    #[test]
    fn retryability_classification() {
        assert!(AbortReason::Conflict.is_retryable());
        assert!(!AbortReason::User.is_retryable());
        assert!(!AbortReason::NotReady(3).is_retryable());
    }
}
