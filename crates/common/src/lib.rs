//! Shared substrate for the BOHM reproduction workspace.
//!
//! This crate defines everything the concurrency-control engines agree on:
//!
//! * the record addressing model ([`RecordId`], [`TableId`], [`types::Timestamp`]),
//! * the transaction model ([`Txn`], [`Procedure`]) — whole transactions with
//!   read- and write-sets known in advance, exactly as BOHM requires
//!   (paper §1, §3),
//! * the engine-agnostic data-access interface ([`Access`]) through which
//!   stored procedures run identically on every engine,
//! * deterministic fast RNG ([`rng`]) and the YCSB zipfian key generator
//!   ([`zipf`], Gray et al. SIGMOD'94 as cited by the paper §4.2.1),
//! * measurement utilities ([`stats`]),
//! * the batch-riding write-ahead log ([`wal`]): the sequencer logs each
//!   formed batch's inputs before releasing it, and recovery is
//!   deterministic replay ([`wal::replay_into`]) — see the workspace's
//!   `recovery_demo` example for the end-to-end open-log → run → kill →
//!   replay → fingerprint-check walkthrough.
//!
//! Engines (BOHM itself plus the Hekaton, SI, OCC and 2PL baselines) depend
//! only on this crate, which keeps the comparison apples-to-apples: the same
//! `Txn` values flow into every engine.

#![warn(missing_docs)]

pub mod access;
pub mod arena;
pub mod checkpoint;
pub mod durable;
pub mod engine;
pub mod index;
pub mod procedures;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod txn;
pub mod types;
pub mod value;
pub mod wal;
pub mod zipf;

pub use access::{AbortReason, Access};
pub use arena::{ASlice, Arena, ArenaPool, SetBuf};
pub use checkpoint::Checkpoint;
pub use durable::DurableEngine;
pub use procedures::{
    execute_procedure, range_audit_fingerprint, ExecScratch, Procedure, SmallBankProc, TpcCProc,
    ABSENT_FINGERPRINT, SCAN_POISON_GAP, SCAN_POISON_VALUE,
};
pub use shard::{
    consistent_cut, shard_wal_dir, ShardMap, ShardSet, ShardStrategy, ShardedEngine, MAX_SHARDS,
};
pub use txn::{IndexScan, ScanRange, Txn};
pub use types::{RecordId, TableId, Timestamp, TxnId, INFINITY_TS};
pub use value::Value;
pub use wal::{DurabilityConfig, FsyncPolicy, LogSink, LoggedBatch, TxnDecision, Wal};

/// Iteration budget for stress/hammer tests: `default` unless the
/// `BOHM_STRESS_ITERS` environment variable overrides it (the scheduled
/// nightly CI job cranks it up; PR CI and local runs stay cheap).
pub fn stress_iters(default: u64) -> u64 {
    std::env::var("BOHM_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
