//! [`DurableEngine`]: WAL + checkpoint durability for *any* interactive
//! engine — the generalization of what used to be a BOHM-only feature.
//!
//! BOHM logs **inputs only**: its serialization order is the arrival
//! order the sequencer already fixed, so replaying the logged inputs
//! deterministically reproduces every decision (paper §2 — determinism
//! is what makes logging cheap). The nondeterministic baselines (2PL,
//! OCC, Hekaton, SI) have no such luxury: their commit order is whatever
//! the scheduler produced, and a transaction that committed in the
//! original execution may abort in a naive replay. [`DurableEngine`]
//! closes the gap the only honest way available to a nondeterministic
//! engine — it **serializes** execution:
//!
//! * `execute` takes a global commit lock, runs the transaction on the
//!   inner engine, then appends the transaction's inputs *plus its
//!   commit decision* ([`TxnDecision`]) to the WAL before releasing the
//!   outcome. Holding the lock across execute-and-log makes log order
//!   equal commit order by construction.
//! * Recovery restores the newest valid [`Checkpoint`], then replays the
//!   log suffix stamped at or after the checkpoint epoch — executing
//!   exactly the transactions whose logged decision says *committed*, in
//!   log (= commit) order, and cross-checking each replayed fingerprint
//!   against the logged one.
//!
//! The serialization is the point, not a shortcut: it is the cost of
//! durability without determinism, and it is why the paper's
//! deterministic design logs at full parallel throughput while these
//! baselines must either pay this serialization or build ARIES-style
//! physical logging. (BOHM itself does not use this wrapper — its
//! sequencer logs whole batches before release; see `Bohm::recover`.)
//!
//! # Losing the unacknowledged tail
//!
//! The inner engine's commit point is inside `execute`, so a crash
//! between the store commit and the WAL append loses that transaction —
//! but its outcome was never returned to the caller, so recovery
//! reconstructing a state without it is indistinguishable from the crash
//! having landed a moment earlier. This is the standard
//! acknowledge-after-log contract.
//!
//! # Checkpoints bound replay
//!
//! [`DurableEngine::checkpoint`] snapshots the inner engine's full
//! record state (through [`Engine::snapshot_records`]) under the commit
//! lock, writes it atomically ([`Checkpoint::write`]), rotates the WAL
//! so every pre-checkpoint record sits in a sealed segment, and then
//! reclaims those segments via
//! [`Wal::truncate_before`](crate::wal::Wal::truncate_before). Recovery
//! after that replays only the post-checkpoint suffix.

use crate::checkpoint::{self, Checkpoint};
use crate::engine::{Engine, ExecOutcome};
use crate::txn::Txn;
use crate::wal::{DurabilityConfig, LogSink, TxnDecision, Wal};
use bohm_sync::atomic::{AtomicU64, Ordering};
use bohm_sync::Mutex;
use std::io;

/// What [`DurableEngine::open`] did to bring the engine back: how much
/// state came from a checkpoint and how much from log replay.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Epoch of the checkpoint restored, if one was found.
    pub checkpoint_epoch: Option<u64>,
    /// Records installed from the checkpoint snapshot.
    pub checkpoint_records: usize,
    /// Logged batches skipped because the checkpoint already covers them
    /// (epoch below the checkpoint's).
    pub batches_skipped: usize,
    /// Transactions re-executed from the log suffix.
    pub txns_replayed: usize,
    /// Logged transactions whose recorded decision was *abort* — their
    /// inputs are in the log but replay does not execute them.
    pub txns_aborted: usize,
}

/// What one [`DurableEngine::checkpoint`] call accomplished.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointStats {
    /// The cut: every batch stamped `>= epoch` is post-checkpoint.
    pub epoch: u64,
    /// Records in the snapshot.
    pub records: usize,
    /// Log bytes reclaimed by truncating pre-checkpoint segments.
    pub freed_bytes: u64,
}

/// Durability wrapper for interactive engines; see the [module docs](self).
///
/// `DurableEngine<E>` is itself an [`Engine`], so the blanket
/// `BatchEngine` impl gives it sessions, `quiesce` and
/// `snapshot_records` for free — harnesses drive it exactly like the
/// bare engine.
pub struct DurableEngine<E: Engine> {
    inner: E,
    wal: Wal,
    /// Current epoch stamp for appended records. Bumped only by
    /// [`checkpoint`](Self::checkpoint) (under the commit lock), so the
    /// log's epoch sequence is non-decreasing and the checkpoint epoch
    /// cleanly splits covered prefix from replay suffix.
    epoch: AtomicU64,
    /// Serializes execute-and-log so log order is commit order; also held
    /// by [`checkpoint`](Self::checkpoint), which makes the snapshot a
    /// true commit-boundary cut.
    commit_lock: Mutex<()>,
    /// Per-table seeded row counts captured from the freshly built inner
    /// engine — the rows `restore_into` must delete when a checkpoint
    /// lacks them.
    seeded_rows: Vec<u64>,
}

impl<E: Engine> DurableEngine<E> {
    /// Open the log directory and bring `inner` — freshly built and
    /// catalog-seeded, never yet executed against — up to the durable
    /// state: restore the newest valid checkpoint (if any), replay the
    /// committed suffix of the log, and resume logging after it.
    ///
    /// On a fresh directory this degenerates to "start logging": no
    /// checkpoint, nothing to replay. Returns the engine and a
    /// [`RecoveryReport`] describing what recovery did.
    ///
    /// # Errors
    ///
    /// I/O errors from the log/checkpoint machinery, plus
    /// [`io::ErrorKind::InvalidData`] when a replayed transaction's
    /// outcome diverges from its logged decision — that means the log
    /// and the engine disagree about history and the store cannot be
    /// trusted.
    pub fn open(inner: E, config: &DurabilityConfig) -> io::Result<(Self, RecoveryReport)> {
        // Opening the WAL first repairs any torn tail, so read_log below
        // sees a clean history.
        let wal = Wal::open(config)?;
        let batches = Wal::read_log(&config.dir)?;
        let ckp = checkpoint::load_latest(&config.dir)?;

        // The freshly seeded engine's present set *is* the seeded set;
        // capture per-table row counts before restore disturbs it.
        let mut seeded_rows: Vec<u64> = Vec::new();
        inner.snapshot_records(&mut |rid, _| {
            let t = rid.table.index();
            if seeded_rows.len() <= t {
                seeded_rows.resize(t + 1, 0);
            }
            seeded_rows[t] = seeded_rows[t].max(rid.row + 1);
        });

        let mut report = RecoveryReport::default();
        let mut resume_epoch = 0u64;
        let base = match &ckp {
            Some(c) => {
                report.checkpoint_epoch = Some(c.epoch);
                report.checkpoint_records = c.records.len();
                resume_epoch = c.epoch;
                checkpoint::restore_into(c, &seeded_rows, &inner);
                c.epoch
            }
            None => 0,
        };

        // Replay the suffix serially through one worker. Replay executes
        // against the inner engine directly — the wrapper is not built
        // yet, so nothing is re-logged (the surviving segments already
        // hold these records).
        let mut w = inner.make_worker();
        for b in &batches {
            if b.epoch < base {
                report.batches_skipped += 1;
                continue;
            }
            resume_epoch = resume_epoch.max(b.epoch);
            match &b.outcomes {
                Some(outs) => {
                    for (txn, d) in b.txns.iter().zip(outs) {
                        if !d.committed {
                            report.txns_aborted += 1;
                            continue;
                        }
                        let out = inner.execute(txn, &mut w);
                        if !out.committed || out.fingerprint != d.fingerprint {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!(
                                    "replay diverged from logged decision at epoch {}: \
                                     logged (committed, fp 0x{:016x}), replayed \
                                     (committed={}, fp 0x{:016x})",
                                    b.epoch, d.fingerprint, out.committed, out.fingerprint
                                ),
                            ));
                        }
                        report.txns_replayed += 1;
                    }
                }
                // An input-only record (no outcomes section) in an
                // interactive engine's log can only come from a
                // deterministic producer; replay everything it holds.
                None => {
                    for txn in &b.txns {
                        inner.execute(txn, &mut w);
                        report.txns_replayed += 1;
                    }
                }
            }
        }

        Ok((
            Self {
                inner,
                wal,
                epoch: AtomicU64::new(resume_epoch),
                commit_lock: Mutex::new(()),
                seeded_rows,
            },
            report,
        ))
    }

    /// Snapshot the current committed state, make it durable, and
    /// reclaim the log prefix it covers. The caller does not need to
    /// quiesce anything: the commit lock blocks every in-flight
    /// `execute`, so the snapshot lands exactly on a commit boundary.
    pub fn checkpoint(&self) -> io::Result<CheckpointStats> {
        let _commit = self.commit_lock.lock();
        // Everything logged so far carries an epoch < cut; everything
        // after this store carries >= cut. The checkpoint covers exactly
        // the former.
        // RELAXED: `epoch` is only read and written under `commit_lock`,
        // whose release edge publishes it; the atomic exists for the
        // lock-free Debug/diagnostic readers.
        let cut = self.epoch.load(Ordering::Relaxed) + 1;
        // RELAXED: as above — still under `commit_lock`.
        self.epoch.store(cut, Ordering::Relaxed);
        let mut records: Vec<(crate::RecordId, Box<[u8]>)> = Vec::new();
        self.inner
            .snapshot_records(&mut |rid, data| records.push((rid, data.into())));
        let count = records.len();
        let ckp = Checkpoint {
            epoch: cut,
            records,
        };
        // Order matters: the snapshot must be durable (write is atomic,
        // ends in dir-fsync) before any log bytes it supersedes go away.
        ckp.write(self.wal.dir())?;
        self.wal.rotate()?;
        let freed = self.wal.truncate_before(cut)?;
        Ok(CheckpointStats {
            epoch: cut,
            records: count,
            freed_bytes: freed,
        })
    }

    /// The wrapped engine (verification hooks).
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// The underlying log handle (diagnostics: `log_bytes`,
    /// `batches_logged`).
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// Total bytes across the log's segments — shrinks when
    /// [`checkpoint`](Self::checkpoint) truncates covered segments.
    pub fn log_bytes(&self) -> u64 {
        self.wal.log_bytes()
    }

    /// Current epoch stamp (= number of checkpoints taken, across all
    /// incarnations of this directory).
    pub fn epoch(&self) -> u64 {
        // RELAXED: diagnostic snapshot; writers serialize on `commit_lock`.
        self.epoch.load(Ordering::Relaxed)
    }
}

impl<E: Engine> Engine for DurableEngine<E> {
    type Worker = E::Worker;

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn make_worker(&self) -> E::Worker {
        self.inner.make_worker()
    }

    fn execute(&self, txn: &Txn, w: &mut E::Worker) -> ExecOutcome {
        let _commit = self.commit_lock.lock();
        let out = self.inner.execute(txn, w);
        let decision = TxnDecision {
            committed: out.committed,
            fingerprint: out.fingerprint,
        };
        let mut one = std::iter::once(txn);
        self.wal
            // RELAXED: read under `commit_lock`, same as the writers.
            .log_batch_decided(self.epoch.load(Ordering::Relaxed), &mut one, &[decision])
            .expect("durable engine: WAL append failed");
        out
    }

    fn read_u64(&self, rid: crate::RecordId) -> Option<u64> {
        self.inner.read_u64(rid)
    }

    fn read_record(&self, rid: crate::RecordId) -> Option<crate::Value> {
        self.inner.read_record(rid)
    }

    fn snapshot_records(&self, f: &mut dyn FnMut(crate::RecordId, &[u8])) {
        self.inner.snapshot_records(f)
    }
}

impl<E: Engine> std::fmt::Debug for DurableEngine<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableEngine")
            .field("engine", &self.inner.name())
            .field("wal", &self.wal)
            // RELAXED: Debug output is allowed to race.
            .field("epoch", &self.epoch.load(Ordering::Relaxed))
            .field("seeded_rows", &self.seeded_rows)
            .finish()
    }
}
