//! Core identifier types shared by every engine and substrate.

use std::fmt;

/// Logical timestamp of a transaction.
///
/// In BOHM a transaction has exactly **one** timestamp — its position in the
/// input log (paper §3.2.1): it "squashes" the `t_begin`/`t_end` pair used by
/// conventional MVCC schemes, so the transaction appears to execute
/// atomically at time `ts`. The Hekaton/SI baselines use the same scalar type
/// for their begin/end timestamps drawn from a global counter.
pub type Timestamp = u64;

/// Identifier of a transaction. For BOHM this equals its [`Timestamp`].
pub type TxnId = u64;

/// The "end timestamp" of a version that has not been superseded yet
/// (paper Fig. 3: end timestamp is set to infinity on insertion).
pub const INFINITY_TS: Timestamp = u64::MAX;

/// Identifier of a table within a [catalog](crate::txn).
///
/// The workloads use a handful of tables (YCSB: 1, SmallBank: 3), so a dense
/// `u32` index keeps [`RecordId`] at 16 bytes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TableId(pub u32);

impl TableId {
    /// Dense index usable for direct catalog addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Fully-qualified primary-key reference to one record.
///
/// All workloads in the paper address records by 64-bit primary key; the
/// SmallBank `Customer` name→id lookup is represented as a key-based read of
/// the customer table (paper §4.3 — the customer table is never updated).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RecordId {
    /// Table the record belongs to.
    pub table: TableId,
    /// Row (primary key) within the table.
    pub row: u64,
}

impl RecordId {
    /// Reference row `row` of table `table`.
    #[inline]
    pub const fn new(table: u32, row: u64) -> Self {
        Self {
            table: TableId(table),
            row,
        }
    }

    /// Stable 64-bit hash of the record identity; used for lock-table
    /// bucketing and BOHM's concurrency-control partitioning.
    ///
    /// This is a fixed finalizer-style mixer (SplitMix64's finalizer), chosen
    /// because keys are often sequential integers and the partition function
    /// must spread them uniformly across CC threads (paper §3.2.2).
    #[inline]
    pub fn stable_hash(&self) -> u64 {
        let mut x = self
            .row
            .wrapping_add((self.table.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }
}

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.table, self.row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_id_is_small() {
        assert_eq!(std::mem::size_of::<RecordId>(), 16);
    }

    #[test]
    fn stable_hash_is_deterministic() {
        let a = RecordId::new(1, 42);
        let b = RecordId::new(1, 42);
        assert_eq!(a.stable_hash(), b.stable_hash());
    }

    #[test]
    fn stable_hash_differs_across_tables_and_rows() {
        let a = RecordId::new(0, 7);
        let b = RecordId::new(1, 7);
        let c = RecordId::new(0, 8);
        assert_ne!(a.stable_hash(), b.stable_hash());
        assert_ne!(a.stable_hash(), c.stable_hash());
    }

    #[test]
    fn stable_hash_spreads_sequential_keys() {
        // Sequential keys must land on different partitions for any
        // reasonable partition count; check an 8-way split is not degenerate.
        let mut counts = [0usize; 8];
        for row in 0..8000 {
            let h = RecordId::new(0, row).stable_hash();
            counts[(h % 8) as usize] += 1;
        }
        for &c in &counts {
            assert!(c > 500, "partition starved: {counts:?}");
        }
    }

    #[test]
    fn ordering_is_lexicographic_table_then_row() {
        // The 2PL baseline relies on a total order over RecordId for
        // deadlock-free acquisition.
        let a = RecordId::new(0, 999);
        let b = RecordId::new(1, 0);
        assert!(a < b);
        let c = RecordId::new(1, 1);
        assert!(b < c);
    }
}
