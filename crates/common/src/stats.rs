//! Measurement utilities: run statistics and a latency histogram.

use std::time::Duration;

/// Outcome counters for one benchmark run (aggregated over worker threads).
#[derive(Clone, Copy, Debug, Default)]
pub struct RunStats {
    /// Transactions that committed.
    pub committed: u64,
    /// Logic (user) aborts — completed decisions, not retried.
    pub user_aborts: u64,
    /// Concurrency-control aborts (each one is a retried attempt).
    pub cc_aborts: u64,
    /// Record accesses performed by committed transactions.
    pub accesses: u64,
    /// Wall-clock duration of the measured window.
    pub duration: Duration,
}

impl RunStats {
    /// Committed transactions per second.
    pub fn throughput(&self) -> f64 {
        self.committed as f64 / self.duration.as_secs_f64().max(1e-9)
    }

    /// Record accesses per second (the §4.1 microbenchmark metric:
    /// "20 million RMW operations per second").
    pub fn access_rate(&self) -> f64 {
        self.accesses as f64 / self.duration.as_secs_f64().max(1e-9)
    }

    /// Fraction of attempts that ended in a concurrency-control abort.
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.committed + self.user_aborts + self.cc_aborts;
        if attempts == 0 {
            0.0
        } else {
            self.cc_aborts as f64 / attempts as f64
        }
    }

    /// Merge per-thread stats into a total (durations take the max — threads
    /// run the same wall-clock window).
    pub fn merge(&mut self, other: &RunStats) {
        self.committed += other.committed;
        self.user_aborts += other.user_aborts;
        self.cc_aborts += other.cc_aborts;
        self.accesses += other.accesses;
        self.duration = self.duration.max(other.duration);
    }
}

/// Power-of-two bucketed latency histogram (nanoseconds).
///
/// Fixed 64 buckets, no allocation after construction, mergeable across
/// threads — suitable for per-transaction latency capture on the hot path.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: [0; 64],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

impl LatencyHistogram {
    /// Fresh, empty histogram (equivalent to `Default`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one latency observation.
    #[inline]
    pub fn record(&mut self, d: Duration) {
        let ns = d.as_nanos().min(u128::from(u64::MAX)) as u64;
        let bucket = 64 - ns.max(1).leading_zeros() as usize - 1;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of all observations.
    pub fn mean(&self) -> Duration {
        self.sum_ns
            .checked_div(self.count)
            .map_or(Duration::ZERO, Duration::from_nanos)
    }

    /// Largest observation recorded.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// Upper bound of the bucket containing the q-quantile (0 < q ≤ 1).
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let target = ((self.count as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Duration::from_nanos(1u64 << (i + 1).min(63));
            }
        }
        self.max()
    }

    /// Fold `other` into this histogram (per-worker merge).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_math() {
        let s = RunStats {
            committed: 1000,
            duration: Duration::from_secs(2),
            ..Default::default()
        };
        assert!((s.throughput() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn abort_rate_counts_only_cc_aborts() {
        let s = RunStats {
            committed: 90,
            user_aborts: 5,
            cc_aborts: 5,
            ..Default::default()
        };
        assert!((s.abort_rate() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn abort_rate_zero_when_idle() {
        assert_eq!(RunStats::default().abort_rate(), 0.0);
    }

    #[test]
    fn merge_accumulates_and_takes_max_duration() {
        let mut a = RunStats {
            committed: 10,
            duration: Duration::from_secs(1),
            ..Default::default()
        };
        let b = RunStats {
            committed: 20,
            cc_aborts: 3,
            duration: Duration::from_secs(2),
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.committed, 30);
        assert_eq!(a.cc_aborts, 3);
        assert_eq!(a.duration, Duration::from_secs(2));
    }

    #[test]
    fn histogram_quantiles_are_monotone() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(Duration::from_nanos(i * 100));
        }
        assert_eq!(h.count(), 1000);
        assert!(h.quantile(0.5) <= h.quantile(0.99));
        assert!(h.quantile(0.99) <= h.max().max(h.quantile(0.99)));
        assert!(h.mean() > Duration::ZERO);
    }

    #[test]
    fn histogram_merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_micros(1));
        b.record(Duration::from_micros(1000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.max() >= Duration::from_micros(1000));
    }

    #[test]
    fn histogram_empty_is_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.quantile(0.99), Duration::ZERO);
    }
}
