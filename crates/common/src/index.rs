//! Posting-list records: the storage format of secondary indexes.
//!
//! A secondary index maps a logical key (e.g. a customer) to the set of
//! rows of another table that currently belong to it (the customer's live
//! orders). Rather than inventing a sixth per-engine synchronization
//! mechanism, the index is represented as an ordinary **table of
//! posting-list records** — one fixed-size record per index key holding
//! the key's sorted member rows — so every engine's existing concurrency
//! control covers it:
//!
//! * index *maintenance* is a read-modify-write of the key's posting-list
//!   record, declared in the maintaining transaction's read and write sets
//!   like any other RMW (2PL takes the key-granular exclusive lock, OCC
//!   bumps the record's TID word — the per-index-key version counter —
//!   Hekaton/SI version the list, BOHM installs a placeholder), and
//! * an index *scan* ([`Access::index_scan`](crate::access::Access::index_scan))
//!   reads the posting-list record at the transaction's snapshot and then
//!   each member row, so a concurrent insert into or delete from the key's
//!   posting set serializes entirely before or after the scan — the
//!   phantom-protection story of range scans, carried over to a sparse,
//!   key-addressed access path.
//!
//! Record layout: a `u64` member count at byte 0, followed by the member
//! row ids as little-endian `u64`s in **ascending order**. The record size
//! fixes the per-key capacity ([`posting_capacity`]); workload generators
//! are responsible for never exceeding it (see
//! `TpccConfig::orders_per_customer`).
//!
//! The mutation helpers return `bool` instead of panicking: an optimistic
//! engine may execute a doomed attempt against a torn snapshot (e.g. OCC
//! reading the order and its posting list under different TIDs) where a
//! membership invariant transiently fails; the attempt is thrown away at
//! validation, so the procedure must stay total. On a serializable commit
//! path the workload invariants make these operations infallible, and the
//! cross-engine equivalence tests catch any divergence.

use crate::value::{get_u64, put_u64};

/// Record size of a posting list holding up to `max_entries` member rows.
#[inline]
pub fn posting_record_size(max_entries: u64) -> usize {
    8 + 8 * max_entries as usize
}

/// Maximum member rows a posting-list record of `record_size` can hold.
#[inline]
pub fn posting_capacity(record_size: usize) -> u64 {
    (record_size.saturating_sub(8) / 8) as u64
}

/// Current member count of a posting-list record.
#[inline]
pub fn posting_count(buf: &[u8]) -> u64 {
    // Tolerate a corrupt (torn-snapshot) count on doomed optimistic
    // attempts: clamp to what the record can physically hold.
    get_u64(buf, 0).min(posting_capacity(buf.len()))
}

/// The member rows of a posting-list record, in ascending order.
#[inline]
pub fn posting_rows(buf: &[u8]) -> impl Iterator<Item = u64> + '_ {
    (0..posting_count(buf)).map(move |i| get_u64(buf, 8 + 8 * i as usize))
}

/// Insert `row` into the posting list, keeping members sorted. Returns
/// `false` (and leaves the record untouched) if the list is full or the
/// row is already a member — tolerable only on doomed optimistic attempts;
/// see the module docs.
pub fn posting_insert(buf: &mut [u8], row: u64) -> bool {
    let n = posting_count(buf);
    if n >= posting_capacity(buf.len()) {
        return false;
    }
    // Find the insertion point (lists are small; linear scan beats the
    // branch misses of binary search at these sizes).
    let mut at = n as usize;
    for i in 0..n as usize {
        let v = get_u64(buf, 8 + 8 * i);
        if v == row {
            return false;
        }
        if v > row {
            at = i;
            break;
        }
    }
    // Shift the tail up one slot and write the new member.
    for i in (at..n as usize).rev() {
        let v = get_u64(buf, 8 + 8 * i);
        put_u64(buf, 8 + 8 * (i + 1), v);
    }
    put_u64(buf, 8 + 8 * at, row);
    put_u64(buf, 0, n + 1);
    true
}

/// Remove `row` from the posting list. Returns `false` if it was not a
/// member (tolerable only on doomed optimistic attempts; see module docs).
pub fn posting_remove(buf: &mut [u8], row: u64) -> bool {
    let n = posting_count(buf);
    for i in 0..n as usize {
        if get_u64(buf, 8 + 8 * i) == row {
            for j in i + 1..n as usize {
                let v = get_u64(buf, 8 + 8 * j);
                put_u64(buf, 8 + 8 * (j - 1), v);
            }
            put_u64(buf, 8 + 8 * (n as usize - 1), 0);
            put_u64(buf, 0, n - 1);
            return true;
        }
    }
    false
}

/// Is `row` a member of the posting list?
#[inline]
pub fn posting_contains(buf: &[u8], row: u64) -> bool {
    posting_rows(buf).any(|r| r == row)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty(cap: u64) -> Vec<u8> {
        vec![0u8; posting_record_size(cap)]
    }

    #[test]
    fn sizes_round_trip() {
        assert_eq!(posting_record_size(0), 8);
        assert_eq!(posting_record_size(4), 40);
        assert_eq!(posting_capacity(40), 4);
        assert_eq!(posting_capacity(8), 0);
    }

    #[test]
    fn insert_keeps_members_sorted() {
        let mut b = empty(4);
        assert!(posting_insert(&mut b, 30));
        assert!(posting_insert(&mut b, 10));
        assert!(posting_insert(&mut b, 20));
        assert_eq!(posting_count(&b), 3);
        assert_eq!(posting_rows(&b).collect::<Vec<_>>(), vec![10, 20, 30]);
        assert!(posting_contains(&b, 20));
        assert!(!posting_contains(&b, 25));
    }

    #[test]
    fn duplicate_and_overflow_inserts_are_rejected() {
        let mut b = empty(2);
        assert!(posting_insert(&mut b, 1));
        assert!(!posting_insert(&mut b, 1), "duplicate");
        assert!(posting_insert(&mut b, 2));
        assert!(!posting_insert(&mut b, 3), "full");
        assert_eq!(posting_rows(&b).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn remove_compacts_and_reports_absence() {
        let mut b = empty(4);
        for r in [5, 7, 9] {
            assert!(posting_insert(&mut b, r));
        }
        assert!(posting_remove(&mut b, 7));
        assert_eq!(posting_rows(&b).collect::<Vec<_>>(), vec![5, 9]);
        assert!(!posting_remove(&mut b, 7), "already gone");
        assert!(posting_remove(&mut b, 5));
        assert!(posting_remove(&mut b, 9));
        assert_eq!(posting_count(&b), 0);
        // Empty list is re-usable.
        assert!(posting_insert(&mut b, 1));
        assert_eq!(posting_rows(&b).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn corrupt_count_is_clamped_not_out_of_bounds() {
        // A torn snapshot on a doomed optimistic attempt may present an
        // arbitrary count word; iteration must stay in bounds.
        let mut b = empty(2);
        put_u64(&mut b, 0, u64::MAX);
        assert_eq!(posting_count(&b), 2);
        assert_eq!(posting_rows(&b).count(), 2);
        assert!(!posting_insert(&mut b, 3), "clamped-full list rejects");
    }
}
