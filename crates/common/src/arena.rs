//! Batch-scoped bump arenas for hot-path buffers.
//!
//! The pipeline (sequencer -> CC -> execution) used to allocate four `Vec`s
//! per transaction for the declared read/write/scan sets plus three boxed
//! slices per `TxnState` (the core crate's per-transaction CC record) for
//! the CC plan and annotation pointers. Under a
//! few hundred thousand transactions per second that is millions of
//! malloc/free pairs a second, all of them with identical lifetime: the
//! enclosing batch. An [`Arena`] replaces them with bump allocation out of
//! pooled chunks:
//!
//! * [`ArenaPool`] owns a capped free list of raw chunk buffers. Once the
//!   pool is warm, creating and retiring batches performs **no** heap
//!   allocation for set/annotation storage — buffers circulate between the
//!   pool and the window ring.
//! * [`Arena`] is a single-owner bump pointer over the current chunk. It
//!   hands out [`ASlice`]s, immutable reference-counted views whose backing
//!   chunk returns to the pool when the last slice (in practice: the batch)
//!   drops.
//! * [`SetBuf`] is the `Vec`-or-arena-slice sum type used by `Txn` so that
//!   workload generators keep building plain `Vec`s while the engine repacks
//!   them contiguously at batch-formation time.
//!
//! Arena memory never runs destructors: [`Arena::alloc_with`] statically
//! rejects `T: Drop` via a `needs_drop` assertion. Slices are written exactly
//! once, before the `ASlice` is constructed, and are immutable afterwards;
//! cross-thread visibility of the initialized bytes rides the same
//! release/acquire edges that publish the slice value itself (channel send,
//! mutex hand-off, `Arc` into the window ring) — exactly the guarantee that
//! makes sending a `Box<[T]>` sound.
//!
//! `TxnState` is not named in this crate; see `bohm::batch` for the consumer.

use bohm_sync::Mutex;
use std::cell::UnsafeCell;
use std::fmt;
use std::mem::{align_of, needs_drop, size_of, MaybeUninit};
use std::ops::Deref;
use std::ptr::NonNull;
use std::sync::{Arc, Weak};

/// Default chunk size. Large enough that a smoke-sized batch (a few thousand
/// TPC-C-lite transactions) needs only a handful of chunks; small enough that
/// a mostly-idle engine pins trivial memory.
pub const DEFAULT_CHUNK_BYTES: usize = 64 * 1024;

/// Default cap on pooled (idle) chunks: enough to cover a full window of
/// in-flight batches at the default batch size without re-mallocing.
pub const DEFAULT_MAX_FREE: usize = 64;

type RawBuf = Box<[UnsafeCell<MaybeUninit<u8>>]>;

fn new_buf(bytes: usize) -> RawBuf {
    // UnsafeCell<MaybeUninit<u8>> is a zero-cost wrapper; building the boxed
    // slice directly (rather than casting from Box<[u8]>) keeps this fully
    // safe code.
    (0..bytes)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect()
}

struct PoolShared {
    free: Mutex<Vec<RawBuf>>,
    chunk_bytes: usize,
    max_free: usize,
}

/// A shared, capped free list of chunk buffers. Cloning is cheap (one `Arc`).
///
/// The pool is deliberately dumb: a mutex around a `Vec` of buffers. It is
/// touched only on chunk turnover (once per ~64 KiB of packed transaction
/// input), never per transaction.
#[derive(Clone)]
pub struct ArenaPool {
    shared: Arc<PoolShared>,
}

impl Default for ArenaPool {
    fn default() -> Self {
        Self::new(DEFAULT_CHUNK_BYTES, DEFAULT_MAX_FREE)
    }
}

impl ArenaPool {
    /// A pool handing out `chunk_bytes`-sized chunks, keeping at most
    /// `max_free` idle buffers for reuse.
    pub fn new(chunk_bytes: usize, max_free: usize) -> Self {
        assert!(chunk_bytes > 0, "arena chunk size must be non-zero");
        ArenaPool {
            shared: Arc::new(PoolShared {
                free: Mutex::new(Vec::new()),
                chunk_bytes,
                max_free,
            }),
        }
    }

    /// Start a fresh bump allocator drawing from this pool.
    pub fn arena(&self) -> Arena {
        Arena {
            pool: self.clone(),
            current: None,
            offset: 0,
        }
    }

    /// Number of idle buffers currently held for reuse (test/metrics hook).
    pub fn free_chunks(&self) -> usize {
        self.shared.free.lock().len()
    }

    /// Pop a recycled buffer able to hold `min_bytes`, or allocate one.
    /// Oversized requests get a dedicated buffer that is *not* recycled
    /// (`put_buf` filters on length), so one pathological transaction cannot
    /// permanently bloat the pool.
    fn take_chunk(&self, min_bytes: usize) -> Arc<Chunk> {
        let buf = if min_bytes <= self.shared.chunk_bytes {
            self.shared
                .free
                .lock()
                .pop()
                .unwrap_or_else(|| new_buf(self.shared.chunk_bytes))
        } else {
            new_buf(min_bytes)
        };
        Arc::new(Chunk {
            buf: Some(buf),
            pool: Arc::downgrade(&self.shared),
        })
    }
}

impl PoolShared {
    fn put_buf(&self, buf: RawBuf) {
        if buf.len() != self.chunk_bytes {
            return; // oversized one-off; let it free
        }
        let mut free = self.free.lock();
        if free.len() < self.max_free {
            free.push(buf);
        }
    }
}

/// One bump-allocated buffer. Dropping the last `Arc<Chunk>` (in practice:
/// when a batch retires out of the window ring and its `TxnState`s drop)
/// returns the raw buffer to the pool instead of freeing it.
struct Chunk {
    /// `None` only transiently inside `Drop`.
    buf: Option<RawBuf>,
    pool: Weak<PoolShared>,
}

// SAFETY: the UnsafeCell interior is written only by the owning `Arena`
// (through `&mut Arena`, single-threaded by construction) and only in the
// not-yet-published tail of the buffer; published regions are immutable.
unsafe impl Send for Chunk {}
// SAFETY: same single-writer/published-immutable argument as `Send`.
unsafe impl Sync for Chunk {}

impl Chunk {
    fn base(&self) -> *mut u8 {
        self.buf.as_ref().unwrap().as_ptr() as *mut u8
    }

    fn capacity(&self) -> usize {
        self.buf.as_ref().unwrap().len()
    }
}

impl Drop for Chunk {
    fn drop(&mut self) {
        if let (Some(buf), Some(pool)) = (self.buf.take(), self.pool.upgrade()) {
            pool.put_buf(buf);
        }
    }
}

/// Single-owner bump allocator over pooled chunks.
///
/// The sequencer keeps one `Arena` alive across batches: consecutive batches
/// share a chunk boundary instead of each wasting a partial chunk, and a
/// chunk recycles as soon as *every* batch holding slices into it has
/// retired (bounded by the window depth, so at most `max_inflight_batches`
/// batches pin any one chunk).
pub struct Arena {
    pool: ArenaPool,
    current: Option<Arc<Chunk>>,
    /// Bytes of `current` already handed out.
    offset: usize,
}

impl Arena {
    /// Copy `src` into the arena. Zero-length slices allocate nothing.
    pub fn alloc_copy<T: Copy>(&mut self, src: &[T]) -> ASlice<T> {
        self.alloc_with(src.len(), |i| src[i])
    }

    /// Allocate `len` elements, initializing element `i` with `f(i)`.
    ///
    /// `T` must not need `Drop`: arena memory is recycled wholesale, never
    /// destructed element-by-element.
    pub fn alloc_with<T>(&mut self, len: usize, mut f: impl FnMut(usize) -> T) -> ASlice<T> {
        assert!(
            !needs_drop::<T>(),
            "arena slices never run destructors; T must not impl Drop"
        );
        if len == 0 {
            return ASlice::empty();
        }
        let bytes = size_of::<T>()
            .checked_mul(len)
            .expect("arena allocation size overflow");
        loop {
            if let Some(chunk) = &self.current {
                let base = chunk.base() as usize;
                let aligned = (base + self.offset).next_multiple_of(align_of::<T>());
                let start = aligned - base;
                if start
                    .checked_add(bytes)
                    .is_some_and(|end| end <= chunk.capacity())
                {
                    // Compute only the *offset* in integer space; derive the
                    // element pointer from the chunk base so it keeps the
                    // allocation's provenance (an `aligned as *mut T` cast
                    // would round-trip through usize and lose it).
                    // SAFETY: `start` is in bounds per the check above.
                    let ptr = unsafe { chunk.base().add(start) } as *mut T;
                    // SAFETY: [start, start+bytes) lies inside the chunk, is
                    // aligned for T, and no previously returned ASlice
                    // overlaps it (they all end at or before `offset`). The
                    // chunk outlives the returned slice via the Arc.
                    unsafe {
                        for i in 0..len {
                            ptr.add(i).write(f(i));
                        }
                    }
                    self.offset = start + bytes;
                    return ASlice {
                        chunk: Some(chunk.clone()),
                        // SAFETY: `ptr` came from a live allocation offset,
                        // never null.
                        ptr: unsafe { NonNull::new_unchecked(ptr) },
                        len,
                    };
                }
            }
            // Worst-case padding for alignment, then retry with a new chunk.
            self.current = Some(self.pool.take_chunk(bytes + align_of::<T>()));
            self.offset = 0;
        }
    }
}

/// An immutable, reference-counted slice carved out of an arena chunk.
///
/// Behaves like an `Arc<[T]>` that is cheap to mint (bump pointer, no
/// per-slice allocation) and whose backing store is recycled. `Deref`s to
/// `[T]`, so any `&[T]` consumer works unchanged.
pub struct ASlice<T> {
    /// Keepalive for the backing storage; `None` iff `len == 0`.
    chunk: Option<Arc<Chunk>>,
    ptr: NonNull<T>,
    len: usize,
}

// SAFETY: ASlice only hands out shared references to its (immutable,
// initialized) elements; the chunk keepalive is Send+Sync.
unsafe impl<T: Send + Sync> Send for ASlice<T> {}
// SAFETY: same shared-immutable argument as `Send` above.
unsafe impl<T: Send + Sync> Sync for ASlice<T> {}

impl<T> ASlice<T> {
    /// The canonical empty slice; allocates nothing and pins no chunk.
    pub fn empty() -> Self {
        ASlice {
            chunk: None,
            ptr: NonNull::dangling(),
            len: 0,
        }
    }
}

impl<T> Deref for ASlice<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        // SAFETY: `ptr..ptr+len` was initialized before construction and the
        // chunk (if any) is kept alive by `self.chunk`.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl<T> Clone for ASlice<T> {
    fn clone(&self) -> Self {
        ASlice {
            chunk: self.chunk.clone(),
            ptr: self.ptr,
            len: self.len,
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for ASlice<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: PartialEq> PartialEq for ASlice<T> {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl<T: Eq> Eq for ASlice<T> {}

impl<'a, T> IntoIterator for &'a ASlice<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// A transaction set buffer: either a client-built `Vec` or an engine-packed
/// arena slice. `Deref`s to `[T]` so call sites are agnostic.
#[derive(Clone)]
pub enum SetBuf<T> {
    /// A client-built `Vec` (as submitted, before the sequencer repacks).
    Owned(Vec<T>),
    /// A contiguous arena slice packed by the sequencer.
    Packed(ASlice<T>),
}

impl<T: fmt::Debug> fmt::Debug for SetBuf<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T> SetBuf<T> {
    /// Whether this buffer has been repacked into an arena slice.
    pub fn is_packed(&self) -> bool {
        matches!(self, SetBuf::Packed(_))
    }
}

impl<T> Deref for SetBuf<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        match self {
            SetBuf::Owned(v) => v,
            SetBuf::Packed(s) => s,
        }
    }
}

impl<T> From<Vec<T>> for SetBuf<T> {
    fn from(v: Vec<T>) -> Self {
        SetBuf::Owned(v)
    }
}

impl<T> Default for SetBuf<T> {
    fn default() -> Self {
        SetBuf::Owned(Vec::new())
    }
}

impl<T: PartialEq> PartialEq for SetBuf<T> {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl<T: Eq> Eq for SetBuf<T> {}

impl<T: PartialEq> PartialEq<Vec<T>> for SetBuf<T> {
    fn eq(&self, other: &Vec<T>) -> bool {
        **self == other[..]
    }
}

impl<T: PartialEq> PartialEq<[T]> for SetBuf<T> {
    fn eq(&self, other: &[T]) -> bool {
        **self == *other
    }
}

impl<'a, T> IntoIterator for &'a SetBuf<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_contents() {
        let pool = ArenaPool::new(256, 4);
        let mut arena = pool.arena();
        let a = arena.alloc_copy(&[1u64, 2, 3]);
        let b = arena.alloc_copy(&[9u32; 7]);
        assert_eq!(&*a, &[1, 2, 3]);
        assert_eq!(&*b, &[9; 7]);
        // Slices from the same chunk are disjoint.
        let c = arena.alloc_with(4, |i| i as u16);
        assert_eq!(&*c, &[0, 1, 2, 3]);
        assert_eq!(&*a, &[1, 2, 3]);
    }

    // Regression for the provenance fix in `alloc_with`: padding inserted
    // for alignment must land the next slice at the right chunk offset and
    // the derived pointer must cover the slice's full extent.
    #[test]
    fn aligned_allocations_after_odd_offsets() {
        let pool = ArenaPool::new(512, 4);
        let mut arena = pool.arena();
        let a = arena.alloc_copy(&[7u8; 3]); // leaves the bump offset odd
        let b = arena.alloc_with(5, |i| (i as u64) << 40);
        assert_eq!(b.as_ptr() as usize % align_of::<u64>(), 0);
        let c = arena.alloc_copy(&[1u8]);
        assert_eq!(&*a, &[7; 3]);
        assert_eq!(&*b, &[0, 1 << 40, 2 << 40, 3 << 40, 4 << 40]);
        assert_eq!(&*c, &[1]);
    }

    #[test]
    fn empty_slices_pin_nothing() {
        let pool = ArenaPool::new(256, 4);
        let mut arena = pool.arena();
        let e: ASlice<u64> = arena.alloc_copy(&[]);
        assert!(e.is_empty());
        assert!(e.chunk.is_none());
        let e2 = e.clone();
        assert!(e2.is_empty());
    }

    #[test]
    fn chunks_recycle_through_the_pool() {
        let pool = ArenaPool::new(256, 4);
        let mut arena = pool.arena();
        let s = arena.alloc_copy(&[0u8; 200]);
        assert_eq!(pool.free_chunks(), 0);
        drop(arena); // arena still held the chunk
        assert_eq!(pool.free_chunks(), 0);
        drop(s); // last reference: buffer returns to the pool
        assert_eq!(pool.free_chunks(), 1);

        // The recycled buffer is reused, not re-malloced.
        let mut arena = pool.arena();
        let s2 = arena.alloc_copy(&[7u8; 200]);
        assert_eq!(pool.free_chunks(), 0);
        assert_eq!(&*s2, &[7u8; 200]);
    }

    #[test]
    fn oversized_allocations_bypass_the_free_list() {
        let pool = ArenaPool::new(64, 4);
        let mut arena = pool.arena();
        let big = arena.alloc_copy(&[1u8; 1000]);
        assert_eq!(big.len(), 1000);
        drop(arena);
        drop(big);
        // Oversized buffer was freed, not pooled.
        assert_eq!(pool.free_chunks(), 0);
    }

    #[test]
    fn free_list_is_capped() {
        let pool = ArenaPool::new(64, 2);
        let mut slices = Vec::new();
        for _ in 0..5 {
            let mut arena = pool.arena();
            slices.push(arena.alloc_copy(&[1u8; 60]));
        }
        drop(slices);
        assert_eq!(pool.free_chunks(), 2);
    }

    #[test]
    fn alignment_is_respected() {
        let pool = ArenaPool::new(256, 4);
        let mut arena = pool.arena();
        let _skew = arena.alloc_copy(&[1u8]); // offset now 1
        let aligned = arena.alloc_copy(&[0u64, 1]);
        assert_eq!(aligned.as_ptr() as usize % align_of::<u64>(), 0);
        assert_eq!(&*aligned, &[0, 1]);
    }

    #[test]
    fn setbuf_compares_across_representations() {
        let pool = ArenaPool::default();
        let mut arena = pool.arena();
        let owned: SetBuf<u64> = vec![1, 2, 3].into();
        let packed = SetBuf::Packed(arena.alloc_copy(&[1u64, 2, 3]));
        assert_eq!(owned, packed);
        assert!(packed.is_packed());
        assert_eq!(format!("{owned:?}"), format!("{:?}", vec![1u64, 2, 3]));
        let cloned = packed.clone();
        assert_eq!(cloned, owned);
    }

    #[test]
    fn slices_survive_cross_thread_handoff() {
        let pool = ArenaPool::default();
        let mut arena = pool.arena();
        let s = arena.alloc_copy(&[42u64; 128]);
        let h = std::thread::spawn(move || s.iter().sum::<u64>());
        assert_eq!(h.join().unwrap(), 42 * 128);
    }

    #[test]
    #[should_panic(expected = "never run destructors")]
    fn dropful_types_are_rejected() {
        let pool = ArenaPool::default();
        let mut arena = pool.arena();
        let _ = arena.alloc_with(1, |_| String::from("no"));
    }
}
