//! Deterministic, allocation-free fast RNG for workload generation.
//!
//! Workload generators sit on the critical path of every benchmark driver
//! thread, so we use xoshiro256** (public-domain construction by Blackman &
//! Vigna) seeded through SplitMix64 — the standard pairing. `rand` is still
//! used at the edges (proptest, seed derivation in tests); this type keeps
//! the hot path branch-free and deterministic across platforms.

/// xoshiro256** PRNG.
#[derive(Clone, Debug)]
pub struct FastRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FastRng {
    /// Seed deterministically; any seed (including 0) produces a good state.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, n)` via Lemire's multiply-shift (unbiased enough for
    /// workload generation; n ≤ 2^32 in all our workloads).
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform double in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Derive an independent stream (for per-thread generators).
    pub fn fork(&mut self, stream: u64) -> Self {
        Self::seed_from(self.next_u64() ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = FastRng::seed_from(7);
        let mut b = FastRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FastRng::seed_from(1);
        let mut b = FastRng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_stays_in_range_and_covers() {
        let mut r = FastRng::seed_from(42);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = r.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = FastRng::seed_from(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_matches_probability_roughly() {
        let mut r = FastRng::seed_from(9);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut base = FastRng::seed_from(5);
        let mut a = base.fork(0);
        let mut b = base.fork(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same <= 1);
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = FastRng::seed_from(0);
        assert_ne!(r.next_u64(), 0);
    }
}
