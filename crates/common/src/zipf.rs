//! Zipfian key generator (Gray et al., "Quickly generating billion-record
//! synthetic databases", SIGMOD 1994) — the generator YCSB and the paper use
//! to control contention via the parameter `theta` (§4.2.1: low contention
//! `theta = 0`, high contention `theta = 0.9`; Fig. 7 sweeps `theta ∈ [0,1)`).
//!
//! `theta = 0` degenerates to the uniform distribution; we special-case it
//! so the low-contention configurations pay no `pow` on the hot path.

use crate::rng::FastRng;

/// Zipfian distribution over `[0, n)` with skew `theta ∈ [0, 1)`.
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    theta: f64,
    // Precomputed constants of the Gray et al. method.
    alpha: f64,
    eta: f64,
    threshold1: f64,
    threshold2: f64,
}

fn zeta(n: u64, theta: f64) -> f64 {
    // Direct sum; called once at generator construction (n ≤ a few million
    // in all paper workloads, so this is milliseconds of setup).
    let mut sum = 0.0;
    for i in 1..=n {
        sum += 1.0 / (i as f64).powf(theta);
    }
    sum
}

impl Zipf {
    /// Create a generator over `[0, n)`.
    ///
    /// Panics if `n == 0` or `theta` is outside `[0, 1)` (the paper never
    /// uses `theta ≥ 1`, where this parameterization is undefined).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipf needs a non-empty domain");
        assert!(
            (0.0..1.0).contains(&theta),
            "theta must be in [0,1), got {theta}"
        );
        if theta == 0.0 {
            return Self {
                n,
                theta,
                alpha: 0.0,
                eta: 0.0,
                threshold1: 0.0,
                threshold2: 0.0,
            };
        }
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Self {
            n,
            theta,
            alpha,
            eta,
            threshold1: 1.0 / zetan,
            threshold2: (1.0 + 0.5f64.powf(theta)) / zetan,
        }
    }

    /// Domain size.
    #[inline]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew parameter.
    #[inline]
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draw the next key. Rank 0 is the hottest key.
    #[inline]
    pub fn sample(&self, rng: &mut FastRng) -> u64 {
        if self.theta == 0.0 {
            return rng.below(self.n);
        }
        let u = rng.f64();
        if u < self.threshold1 {
            return 0;
        }
        if u < self.threshold2 {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }

    /// Draw `k` **distinct** keys into `out` (cleared first). The paper's
    /// YCSB transactions access 10 distinct records (§4.2.1: "each element
    /// of a transaction's read- and write-set is unique").
    pub fn sample_distinct(&self, rng: &mut FastRng, k: usize, out: &mut Vec<u64>) {
        assert!(
            (k as u64) <= self.n,
            "cannot draw {k} distinct keys from a domain of {}",
            self.n
        );
        out.clear();
        while out.len() < k {
            let key = self.sample(rng);
            if !out.contains(&key) {
                out.push(key);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(1000, 0.0);
        let mut rng = FastRng::seed_from(1);
        let mut counts = vec![0u32; 10];
        for _ in 0..100_000 {
            counts[(z.sample(&mut rng) / 100) as usize] += 1;
        }
        let (min, max) = (
            *counts.iter().min().unwrap() as f64,
            *counts.iter().max().unwrap() as f64,
        );
        assert!(max / min < 1.15, "uniform buckets too skewed: {counts:?}");
    }

    #[test]
    fn skewed_distribution_favors_low_ranks() {
        let z = Zipf::new(1_000_000, 0.9);
        let mut rng = FastRng::seed_from(2);
        let mut hot = 0usize;
        let total = 200_000;
        for _ in 0..total {
            if z.sample(&mut rng) < 100 {
                hot += 1;
            }
        }
        // With theta=0.9 over 1M keys, the hottest 100 keys draw a large
        // fraction of accesses (analytically ~28%); uniform would give 0.01%.
        let frac = hot as f64 / total as f64;
        assert!(frac > 0.15, "hot fraction = {frac}");
    }

    #[test]
    fn higher_theta_is_more_skewed() {
        let mut rng = FastRng::seed_from(3);
        let frac = |theta: f64, rng: &mut FastRng| {
            let z = Zipf::new(100_000, theta);
            let mut hot = 0;
            for _ in 0..50_000 {
                if z.sample(rng) < 10 {
                    hot += 1;
                }
            }
            hot as f64 / 50_000.0
        };
        let f_mid = frac(0.5, &mut rng);
        let f_high = frac(0.99, &mut rng);
        assert!(f_high > f_mid * 2.0, "mid={f_mid} high={f_high}");
    }

    #[test]
    fn samples_stay_in_domain() {
        for theta in [0.0, 0.5, 0.9, 0.99] {
            let z = Zipf::new(50, theta);
            let mut rng = FastRng::seed_from(4);
            for _ in 0..10_000 {
                assert!(z.sample(&mut rng) < 50);
            }
        }
    }

    #[test]
    fn distinct_sampling_yields_unique_keys() {
        let z = Zipf::new(50, 0.9); // hot domain: duplicates are likely
        let mut rng = FastRng::seed_from(5);
        let mut out = Vec::new();
        for _ in 0..200 {
            z.sample_distinct(&mut rng, 10, &mut out);
            assert_eq!(out.len(), 10);
            let mut sorted = out.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 10, "duplicate keys drawn: {out:?}");
        }
    }

    #[test]
    #[should_panic(expected = "distinct keys")]
    fn distinct_sampling_rejects_oversized_requests() {
        let z = Zipf::new(5, 0.0);
        let mut rng = FastRng::seed_from(6);
        let mut out = Vec::new();
        z.sample_distinct(&mut rng, 6, &mut out);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn rejects_theta_one() {
        let _ = Zipf::new(10, 1.0);
    }

    #[test]
    fn hottest_two_keys_get_thresholds() {
        // Regression test for the two closed-form branches of the Gray
        // method: ranks 0 and 1 must be the two most frequent outcomes.
        let z = Zipf::new(10_000, 0.9);
        let mut rng = FastRng::seed_from(7);
        let mut counts = std::collections::HashMap::<u64, u32>::new();
        for _ in 0..100_000 {
            *counts.entry(z.sample(&mut rng)).or_default() += 1;
        }
        let c0 = counts.get(&0).copied().unwrap_or(0);
        let c1 = counts.get(&1).copied().unwrap_or(0);
        let cmax_other = counts
            .iter()
            .filter(|(k, _)| **k > 1)
            .map(|(_, v)| *v)
            .max()
            .unwrap();
        assert!(c0 > c1, "rank 0 should beat rank 1: {c0} vs {c1}");
        assert!(c1 >= cmax_other, "rank 1 should beat deeper ranks");
    }
}
