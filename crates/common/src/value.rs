//! Record values: fixed-size opaque byte payloads.
//!
//! The paper's workloads use fixed record sizes per table (YCSB: 1,000 bytes,
//! SmallBank / microbenchmark: 8 bytes, §4.2/§4.3). A [`Value`] is an owned
//! boxed byte slice; helpers read and write little-endian `u64`s at an
//! offset, which is how every stored procedure interprets its records.

/// Owned record payload.
///
/// `Box<[u8]>` rather than `Vec<u8>`: values never grow after creation, and
/// the two-word representation keeps version objects smaller (guides:
/// "Boxed Slices").
pub type Value = Box<[u8]>;

/// Create a zeroed value of `len` bytes.
#[inline]
pub fn zeroed(len: usize) -> Value {
    vec![0u8; len].into_boxed_slice()
}

/// Create a value of `len` bytes whose first 8 bytes encode `x`.
///
/// Panics if `len < 8`; all paper workloads use records of at least 8 bytes.
pub fn of_u64(x: u64, len: usize) -> Value {
    assert!(len >= 8, "record too small for a u64 payload");
    let mut v = vec![0u8; len];
    v[..8].copy_from_slice(&x.to_le_bytes());
    v.into_boxed_slice()
}

/// Read the little-endian `u64` at byte offset `off`.
#[inline]
pub fn get_u64(data: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&data[off..off + 8]);
    u64::from_le_bytes(b)
}

/// Write `x` as little-endian at byte offset `off`.
#[inline]
pub fn put_u64(data: &mut [u8], off: usize, x: u64) {
    data[off..off + 8].copy_from_slice(&x.to_le_bytes());
}

/// Fold a byte slice into a 64-bit checksum (used by read-only transactions
/// so reads cannot be optimized away, and by equivalence tests).
#[inline]
pub fn checksum(data: &[u8]) -> u64 {
    // FNV-1a over the first word plus length; cheap and stable.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let take = data.len().min(8);
    for &b in &data[..take] {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    h ^ data.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip_at_offsets() {
        let mut v = zeroed(24);
        put_u64(&mut v, 0, 0xDEAD_BEEF);
        put_u64(&mut v, 8, 7);
        put_u64(&mut v, 16, u64::MAX);
        assert_eq!(get_u64(&v, 0), 0xDEAD_BEEF);
        assert_eq!(get_u64(&v, 8), 7);
        assert_eq!(get_u64(&v, 16), u64::MAX);
    }

    #[test]
    fn of_u64_sets_prefix_only() {
        let v = of_u64(42, 16);
        assert_eq!(get_u64(&v, 0), 42);
        assert_eq!(get_u64(&v, 8), 0);
        assert_eq!(v.len(), 16);
    }

    #[test]
    #[should_panic(expected = "record too small")]
    fn of_u64_rejects_tiny_records() {
        let _ = of_u64(1, 4);
    }

    #[test]
    fn checksum_distinguishes_values() {
        let a = of_u64(1, 8);
        let b = of_u64(2, 8);
        assert_ne!(checksum(&a), checksum(&b));
        assert_eq!(checksum(&a), checksum(&of_u64(1, 8)));
    }

    #[test]
    fn checksum_depends_on_length() {
        assert_ne!(checksum(&zeroed(8)), checksum(&zeroed(16)));
    }
}
