//! Two-phase locking baseline (paper §4, "our 2PL implementation").
//!
//! The paper's locking baseline has three properties, all present here:
//!
//! * **Fine-grained latching** — per-record lock words (see `bohm-lockmgr`),
//!   no centralized latch.
//! * **Deadlock freedom** — advance knowledge of read/write sets lets every
//!   transaction acquire its locks in lexicographic (global slot) order, so
//!   no deadlock-detection logic exists.
//! * **No lock-table-entry allocation** — lock words are pre-sized from the
//!   catalog; the per-worker request buffer is reused across transactions,
//!   so the steady-state execute path performs zero allocations.
//!
//! Being pessimistic and deadlock-free, this engine never aborts for
//! concurrency control; the only aborts are logic (user) aborts, and those
//! must be decided before the first write (the same contract every engine
//! in this workspace shares, because 2PL updates records in place without
//! an undo log).

use bohm_common::engine::{Engine, ExecOutcome};
use bohm_common::{AbortReason, Access, RecordId, Txn};
use bohm_lockmgr::{LockMode, LockRequest, LockTable};
use bohm_svstore::{SingleVersionStore, StoreBuilder};

/// The 2PL engine: a single-version store plus a lock table.
pub struct TwoPhaseLocking {
    store: SingleVersionStore,
    locks: LockTable,
}

/// Per-worker reusable buffers (lock requests + procedure scratch).
pub struct TplWorker {
    reqs: Vec<LockRequest>,
    scratch: bohm_common::ExecScratch,
}

impl TwoPhaseLocking {
    /// Build from a pre-populated store.
    pub fn new(store: SingleVersionStore) -> Self {
        let locks = LockTable::new(store.total_slots());
        Self { store, locks }
    }

    /// Convenience constructor from a store builder.
    pub fn from_builder(builder: StoreBuilder) -> Self {
        Self::new(builder.build())
    }

    pub fn store(&self) -> &SingleVersionStore {
        &self.store
    }
}

/// In-place record access under held locks.
struct TplAccess<'a> {
    store: &'a SingleVersionStore,
    txn: &'a Txn,
}

impl Access for TplAccess<'_> {
    fn read(&mut self, idx: usize, out: &mut dyn FnMut(&[u8])) -> Result<(), AbortReason> {
        if !self.read_maybe(idx, out)? {
            panic!("read of unknown record {}", self.txn.reads[idx]);
        }
        Ok(())
    }

    fn read_maybe(&mut self, idx: usize, out: &mut dyn FnMut(&[u8])) -> Result<bool, AbortReason> {
        let rid = self.txn.reads[idx];
        let table = self.store.table(rid);
        // The lock covers the slot whether or not a record exists in it, so
        // "absent" is as stable an answer as any payload for the duration
        // of the transaction.
        if !table.is_present(rid.row as usize) {
            return Ok(false);
        }
        // SAFETY: the worker holds a shared or exclusive lock on this
        // record for the duration of the transaction (strict 2PL).
        unsafe { table.read(rid.row as usize, out) };
        Ok(true)
    }

    fn write(&mut self, idx: usize, data: &[u8]) -> Result<(), AbortReason> {
        let rid = self.txn.writes[idx];
        let table = self.store.table(rid);
        // SAFETY: exclusive lock held (write-set entries lock Exclusive).
        unsafe { table.write(rid.row as usize, data) };
        // First write to a reserved slot is the insert; the lock release
        // publishes flag and payload together.
        table.mark_present(rid.row as usize);
        Ok(())
    }

    fn delete(&mut self, idx: usize) -> Result<(), AbortReason> {
        let rid = self.txn.writes[idx];
        // Exclusive lock held on the slot (write-set entries lock Exclusive),
        // so clearing the flag is race-free and the lock release publishes
        // it; deleting an already-absent slot is a no-op under the same
        // lock. The slot returns to the table's free pool immediately.
        self.store.table(rid).clear_present(rid.row as usize);
        Ok(())
    }

    fn index_scan(
        &mut self,
        idx: usize,
        out: &mut dyn FnMut(u64, &[u8]),
    ) -> Result<u64, AbortReason> {
        // Phantom protection is the **key-granular index lock**: the
        // scanned key's posting-list record is a declared read, so
        // `execute` holds its shared lock for the whole transaction — and
        // an *empty* posting list is still a locked record, i.e. the gap
        // lock that blocks a concurrent NewOrder from adding the key's
        // first member until this transaction releases. Maintenance
        // (NewOrder/Delivery) needs the same lock exclusively, so the
        // membership observed here is stable.
        //
        // Member rows are read WITHOUT their own slot locks, under the
        // covering-writer contract (see `Access::index_scan`): any writer
        // of an indexed row holds the row's posting-list lock exclusively
        // in the same transaction, which conflicts with our shared lock —
        // so member payloads cannot change (or be deleted/torn) while we
        // read them.
        let s = self.txn.index_scans[idx];
        let list_rid = self.txn.reads[s.list];
        let lt = self.store.table(list_rid);
        let dt = &self.store.tables()[s.table.index()];
        if !lt.is_present(list_rid.row as usize) {
            return Ok(0); // index key has no posting list: empty result
        }
        let mut n = 0;
        // SAFETY: shared (or exclusive) lock held on the posting-list slot
        // for the duration of the transaction (declared read-set entry).
        unsafe {
            lt.read(list_rid.row as usize, &mut |list| {
                for row in bohm_common::index::posting_rows(list) {
                    if (row as usize) >= dt.rows() || !dt.is_present(row as usize) {
                        continue; // contract violation tolerance: skip
                    }
                    // SAFETY: covering-writer contract (see above).
                    dt.read(row as usize, &mut |b| out(row, b));
                    n += 1;
                }
            });
        }
        Ok(n)
    }

    fn scan(&mut self, idx: usize, out: &mut dyn FnMut(u64, &[u8])) -> Result<u64, AbortReason> {
        // Phantom protection is the lock set: `execute` acquired a shared
        // lock on *every* slot of the range, present or absent — the lock
        // on an absent slot is the gap/next-key lock that blocks a
        // concurrent insert into the range until this transaction releases
        // (and a delete needs the same exclusive lock). The membership
        // observed here is therefore stable for the whole transaction.
        let s = self.txn.scans[idx];
        let table = self.store.table(RecordId {
            table: s.table,
            row: s.lo,
        });
        let mut n = 0;
        for row in s.rows() {
            if !table.is_present(row as usize) {
                continue;
            }
            // SAFETY: shared lock held on this slot for the whole txn.
            unsafe { table.read(row as usize, &mut |b| out(row, b)) };
            n += 1;
        }
        Ok(n)
    }

    fn write_len(&mut self, idx: usize) -> usize {
        self.store.table(self.txn.writes[idx]).record_size()
    }
}

impl Engine for TwoPhaseLocking {
    type Worker = TplWorker;

    fn name(&self) -> &'static str {
        "2PL"
    }

    fn make_worker(&self) -> TplWorker {
        TplWorker {
            reqs: Vec::with_capacity(32),
            scratch: bohm_common::ExecScratch::new(),
        }
    }

    fn execute(&self, txn: &Txn, w: &mut TplWorker) -> ExecOutcome {
        // Growing phase: everything, in sorted order, before any access.
        w.reqs.clear();
        for rid in &txn.reads {
            w.reqs.push(LockRequest {
                slot: self.store.slot(*rid),
                mode: LockMode::Shared,
            });
        }
        for rid in &txn.writes {
            w.reqs.push(LockRequest {
                slot: self.store.slot(*rid),
                mode: LockMode::Exclusive,
            });
        }
        // Scans lock every slot of their range, absent slots included: the
        // shared lock on a slot holding no record is the gap/next-key lock
        // that keeps a concurrent insert (which needs it exclusively) out of
        // the range until this transaction releases — genuine phantom
        // protection, with no separate predicate-lock table needed because
        // the key space of a table is its dense slot array.
        for s in &txn.scans {
            let table = &self.store.tables()[s.table.index()];
            assert!(
                s.hi as usize <= table.rows(),
                "scan range {s:?} beyond table capacity {}",
                table.rows()
            );
            for row in s.rows() {
                w.reqs.push(LockRequest {
                    slot: self.store.slot(RecordId {
                        table: s.table,
                        row,
                    }),
                    mode: LockMode::Shared,
                });
            }
        }
        LockTable::normalize(&mut w.reqs);
        self.locks.acquire_raw(&w.reqs);

        txn.think();
        let result = bohm_common::execute_procedure(
            &txn.proc,
            &txn.reads,
            &txn.writes,
            &txn.scans,
            &mut TplAccess {
                store: &self.store,
                txn,
            },
            &mut w.scratch,
        );

        // Shrinking phase.
        self.locks.release(&w.reqs);

        match result {
            Ok(fp) => ExecOutcome {
                committed: true,
                fingerprint: fp,
                cc_retries: 0,
            },
            Err(AbortReason::User) => ExecOutcome {
                committed: false,
                fingerprint: 0,
                cc_retries: 0,
            },
            Err(e) => unreachable!("2PL cannot raise {e:?}"),
        }
    }

    fn read_u64(&self, rid: RecordId) -> Option<u64> {
        Engine::read_record(self, rid).map(|d| bohm_common::value::get_u64(&d, 0))
    }

    fn read_record(&self, rid: RecordId) -> Option<bohm_common::Value> {
        let table = self.store.table(rid);
        if (rid.row as usize) >= table.rows() || !table.is_present(rid.row as usize) {
            return None;
        }
        let mut v = None;
        // SAFETY: verification hook; caller guarantees quiescence.
        unsafe {
            table.read(rid.row as usize, &mut |b| v = Some(b.into()));
        }
        v
    }

    fn snapshot_records(&self, f: &mut dyn FnMut(RecordId, &[u8])) {
        // Quiescent by the trait contract: no locks are held, so the
        // present bits and payloads are the committed state.
        self.store.for_each_present(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bohm_common::{Procedure, SmallBankProc};
    use std::sync::Arc;

    fn engine(rows: usize) -> TwoPhaseLocking {
        let mut b = StoreBuilder::new();
        b.add_table(rows, 8);
        b.seed_u64(0, |r| r);
        TwoPhaseLocking::from_builder(b)
    }

    fn rmw(k: u64, delta: u64) -> Txn {
        let rid = RecordId::new(0, k);
        Txn::new(vec![rid], vec![rid], Procedure::ReadModifyWrite { delta })
    }

    #[test]
    fn rmw_commits_and_updates_in_place() {
        let e = engine(8);
        let mut w = e.make_worker();
        let out = e.execute(&rmw(3, 10), &mut w);
        assert!(out.committed);
        assert_eq!(out.cc_retries, 0);
        assert_eq!(e.read_u64(RecordId::new(0, 3)), Some(13));
    }

    #[test]
    fn user_abort_leaves_state_untouched() {
        let mut b = StoreBuilder::new();
        b.add_table(2, 8);
        b.seed_u64(0, |_| 5);
        let e = TwoPhaseLocking::from_builder(b);
        let mut w = e.make_worker();
        let sav = RecordId::new(0, 0);
        let t = Txn::new(
            vec![sav],
            vec![sav],
            Procedure::SmallBank(SmallBankProc::TransactSaving { v: -10 }),
        );
        let out = e.execute(&t, &mut w);
        assert!(!out.committed);
        assert_eq!(e.read_u64(sav), Some(5));
    }

    #[test]
    fn concurrent_hot_key_increments_are_exact() {
        let e = Arc::new(engine(4));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let e = Arc::clone(&e);
            handles.push(std::thread::spawn(move || {
                let mut w = e.make_worker();
                for _ in 0..5_000 {
                    assert!(e.execute(&rmw(1, 1), &mut w).committed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(e.read_u64(RecordId::new(0, 1)), Some(1 + 40_000));
    }

    #[test]
    fn overlapping_multi_record_rmws_conserve_totals() {
        // Pairs of +1/-1 double-RMWs over random overlapping pairs: the
        // wrapping total is invariant iff 2PL provides isolation.
        let e = Arc::new(engine(16));
        let total_before = (0..16).fold(0u64, |acc, k| {
            acc.wrapping_add(e.read_u64(RecordId::new(0, k)).unwrap())
        });
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let e = Arc::clone(&e);
            handles.push(std::thread::spawn(move || {
                let mut w = e.make_worker();
                let mut x = t.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                for _ in 0..5_000 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let a = x % 16;
                    let b = (x >> 8) % 16;
                    if a == b {
                        continue;
                    }
                    let (r1, r2) = (RecordId::new(0, a), RecordId::new(0, b));
                    let up = Txn::new(
                        vec![r1, r2],
                        vec![r1, r2],
                        Procedure::ReadModifyWrite { delta: 1 },
                    );
                    let down = Txn::new(
                        vec![r1, r2],
                        vec![r1, r2],
                        Procedure::ReadModifyWrite {
                            delta: 1u64.wrapping_neg(),
                        },
                    );
                    assert!(e.execute(&up, &mut w).committed);
                    assert!(e.execute(&down, &mut w).committed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total_after = (0..16).fold(0u64, |acc, k| {
            acc.wrapping_add(e.read_u64(RecordId::new(0, k)).unwrap())
        });
        assert_eq!(total_before, total_after);
    }

    #[test]
    fn read_u64_bounds() {
        let e = engine(4);
        assert_eq!(e.read_u64(RecordId::new(0, 3)), Some(3));
        assert_eq!(e.read_u64(RecordId::new(0, 4)), None);
    }

    #[test]
    fn insert_into_spare_slot_becomes_visible() {
        let mut b = StoreBuilder::new();
        b.add_table_with_spare(2, 2, 8);
        b.seed_u64(0, |r| r);
        let e = TwoPhaseLocking::from_builder(b);
        let mut w = e.make_worker();
        let fresh = RecordId::new(0, 3);
        assert_eq!(e.read_u64(fresh), None, "spare slot starts absent");
        let t = Txn::new(vec![], vec![fresh], Procedure::BlindWrite { value: 9 });
        assert!(e.execute(&t, &mut w).committed);
        assert_eq!(e.read_u64(fresh), Some(9));
        assert_eq!(e.store().row_count(0), 3);
    }

    #[test]
    fn delete_then_reinsert_recycles_the_slot() {
        let mut b = StoreBuilder::new();
        b.add_table(4, 8);
        b.seed_u64(0, |r| r + 10);
        let e = TwoPhaseLocking::from_builder(b);
        let mut w = e.make_worker();
        let guard = RecordId::new(0, 0);
        let victim = RecordId::new(0, 2);
        let del = Txn::new(
            vec![guard],
            vec![victim],
            Procedure::GuardedDelete { min: 0 },
        );
        assert!(e.execute(&del, &mut w).committed);
        assert_eq!(e.read_u64(victim), None, "deleted row reads absent");
        assert_eq!(e.store().row_count(0), 3);
        assert_eq!(e.store().free_slots(0), 1, "slot returned to free pool");
        // Reuse the slot.
        let ins = Txn::new(vec![], vec![victim], Procedure::BlindWrite { value: 77 });
        assert!(e.execute(&ins, &mut w).committed);
        assert_eq!(e.read_u64(victim), Some(77));
        assert_eq!(e.store().free_slots(0), 0);
    }

    #[test]
    fn aborted_delete_leaves_row_readable_and_slot_unreclaimed() {
        let mut b = StoreBuilder::new();
        b.add_table(2, 8);
        b.seed_u64(0, |_| 0); // guard value 0 < min ⇒ user abort
        let e = TwoPhaseLocking::from_builder(b);
        let mut w = e.make_worker();
        let victim = RecordId::new(0, 1);
        let del = Txn::new(
            vec![RecordId::new(0, 0)],
            vec![victim],
            Procedure::GuardedDelete { min: 1 },
        );
        assert!(!e.execute(&del, &mut w).committed);
        assert_eq!(e.read_u64(victim), Some(0), "aborted delete rolls back");
        assert_eq!(e.store().free_slots(0), 0);
    }

    #[test]
    fn concurrent_delete_insert_churn_stays_consistent() {
        // Threads alternate delete/insert of a shared row under 2PL; the
        // final state must be either a committed insert value or absent —
        // never a torn/half state — and the presence counter must agree
        // with the flag.
        let mut b = StoreBuilder::new();
        b.add_table(2, 8);
        b.seed_u64(0, |_| 1);
        let e = Arc::new(TwoPhaseLocking::from_builder(b));
        let hot = RecordId::new(0, 1);
        let guard = RecordId::new(0, 0);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let e = Arc::clone(&e);
            handles.push(std::thread::spawn(move || {
                let mut w = e.make_worker();
                for i in 0..2_000u64 {
                    if (t + i) % 2 == 0 {
                        let del =
                            Txn::new(vec![guard], vec![hot], Procedure::GuardedDelete { min: 0 });
                        assert!(e.execute(&del, &mut w).committed);
                    } else {
                        let ins =
                            Txn::new(vec![], vec![hot], Procedure::BlindWrite { value: 100 + t });
                        assert!(e.execute(&ins, &mut w).committed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        if let Some(v) = e.read_u64(hot) {
            assert!((100..104).contains(&v), "value from some insert: {v}");
        }
        let expect = 1 + u64::from(e.read_u64(hot).is_some());
        assert_eq!(e.store().row_count(0), expect);
    }

    #[test]
    fn scan_observes_membership_under_range_locks() {
        use bohm_common::{range_audit_fingerprint, ScanRange, SCAN_POISON_GAP};
        let mut b = StoreBuilder::new();
        b.add_table_with_spare(2, 3, 8); // rows 0,1 seeded; 2..5 absent
        b.seed_u64(0, |r| 10 + r);
        let e = TwoPhaseLocking::from_builder(b);
        let mut w = e.make_worker();
        let audit = || {
            Txn::with_scans(
                vec![],
                vec![],
                vec![ScanRange::new(0, 0, 5)],
                Procedure::RangeAudit { expect_base: 10 },
            )
        };
        let out = e.execute(&audit(), &mut w);
        assert!(out.committed);
        assert_eq!(out.fingerprint, range_audit_fingerprint(2, 0));
        // Insert row 2 (value 12, per the keyed convention): run grows.
        let ins = Txn::new(
            vec![],
            vec![RecordId::new(0, 2)],
            Procedure::InsertKeyed { base: 10 },
        );
        assert!(e.execute(&ins, &mut w).committed);
        assert_eq!(
            e.execute(&audit(), &mut w).fingerprint,
            range_audit_fingerprint(3, 0)
        );
        // Delete row 1: the hole is visible as a gap.
        let del = Txn::new(
            vec![RecordId::new(0, 0)],
            vec![RecordId::new(0, 1)],
            Procedure::GuardedDelete { min: 0 },
        );
        assert!(e.execute(&del, &mut w).committed);
        assert_eq!(e.execute(&audit(), &mut w).fingerprint, SCAN_POISON_GAP);
    }

    #[test]
    fn absent_read_reports_absence_not_garbage() {
        use bohm_common::{TpcCProc, ABSENT_FINGERPRINT};
        let mut b = StoreBuilder::new();
        b.add_table(1, 8); // customer stand-in
        b.add_table_with_spare(0, 4, 8); // order stand-in, empty
        b.seed_u64(0, |_| 5);
        let e = TwoPhaseLocking::from_builder(b);
        let mut w = e.make_worker();
        let t = Txn::new(
            vec![RecordId::new(0, 0), RecordId::new(1, 2)],
            vec![],
            Procedure::TpcC(TpcCProc::OrderStatus),
        );
        let out = e.execute(&t, &mut w);
        assert!(out.committed);
        assert_eq!(
            out.fingerprint,
            5u64.wrapping_mul(31).wrapping_add(ABSENT_FINGERPRINT)
        );
    }
}
