//! Fixed-size array-indexed multi-version store.
//!
//! The paper runs its Hekaton/SI baselines with "a simple fixed-size array
//! index to access records" and no incremental garbage collection (§4);
//! this store reproduces both choices. Each record slot is the head of a
//! backward-linked version chain; pushes are CAS-loops because, unlike
//! BOHM, *any* worker thread may install a version on any record.

// HOT-PATH: push/prune/scan run per write and per GC pass; no clocks,
// no syscalls, no I/O (enforced by the lint).

use crate::version::{unpack, HkVersion, WordView, ABORTED_SENTINEL, END_INF};
use bohm_common::RecordId;
use bohm_sync::atomic::{AtomicPtr, AtomicU8, Ordering};
use crossbeam_epoch as epoch;

/// One record's slot: chain head and pruner try-lock together, padded to a
/// cache line. Any worker may CAS any head, so without the padding adjacent
/// rows (8-byte heads, 8 per line) false-share under uniform access — every
/// push invalidates the line under seven unrelated records.
#[repr(align(64))]
struct Slot {
    head: AtomicPtr<HkVersion>,
    /// Per-record pruner mutual exclusion (try-lock; contenders skip). Only
    /// pruners write `prev` of published versions or free them, so holding
    /// this lock makes a record's chain structure single-writer again.
    prune_lock: AtomicU8,
}

struct TableSlots {
    slots: Box<[Slot]>,
    record_size: usize,
}

/// Multi-table array-indexed version store.
pub struct HekatonStore {
    tables: Vec<TableSlots>,
}

impl HekatonStore {
    /// Create empty tables; `specs[t] = (rows, record_size)`.
    pub fn new(specs: &[(u64, usize)]) -> Self {
        Self {
            tables: specs
                .iter()
                .map(|&(rows, record_size)| {
                    let mut slots = Vec::with_capacity(rows as usize);
                    slots.resize_with(rows as usize, || Slot {
                        head: AtomicPtr::new(std::ptr::null_mut()),
                        prune_lock: AtomicU8::new(0),
                    });
                    TableSlots {
                        slots: slots.into_boxed_slice(),
                        record_size,
                    }
                })
                .collect(),
        }
    }

    /// Preload every row of `table` with `seed(row)` as a committed version
    /// at timestamp 0. Call before sharing the store.
    pub fn seed_u64(&self, table: u32, seed: impl Fn(u64) -> u64) {
        self.seed_rows_u64(table, self.tables[table as usize].slots.len() as u64, seed);
    }

    /// Preload only the first `rows` rows of `table`; the remaining slots
    /// keep their null heads — records that do not exist until a
    /// transaction inserts them (tables declared with insert headroom).
    pub fn seed_rows_u64(&self, table: u32, rows: u64, seed: impl Fn(u64) -> u64) {
        let t = &self.tables[table as usize];
        assert!(rows as usize <= t.slots.len(), "seed beyond capacity");
        for row in 0..rows as usize {
            let data = bohm_common::value::of_u64(seed(row as u64), t.record_size);
            let v = Box::into_raw(Box::new(HkVersion::committed(0, data)));
            t.slots[row].head.store(v, Ordering::Release);
        }
    }

    #[inline]
    pub fn head(&self, rid: RecordId) -> &AtomicPtr<HkVersion> {
        &self.tables[rid.table.index()].slots[rid.row as usize].head
    }

    #[inline]
    pub fn record_size(&self, rid: RecordId) -> usize {
        self.tables[rid.table.index()].record_size
    }

    #[inline]
    pub fn rows(&self, table: u32) -> usize {
        self.tables[table as usize].slots.len()
    }

    /// Number of tables in the store (the background sweep's outer loop).
    #[inline]
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Push `nv` (already initialized) as the new chain head of `rid`.
    /// Callers guarantee `nv` is a valid, exclusively-owned allocation
    /// until the CAS publishes it (enforced crate-internally).
    pub(crate) fn push(&self, rid: RecordId, nv: *mut HkVersion) {
        let head = self.head(rid);
        loop {
            let h = head.load(Ordering::Acquire);
            // SAFETY: nv is exclusively ours until the CAS succeeds.
            // RELAXED: `nv` is unpublished; the Release CAS below makes
            // `prev` visible together with the new head.
            unsafe { (*nv).prev.store(h, Ordering::Relaxed) };
            if head
                // RELAXED: failure-order only — a lost race retries; the
                // reloaded head is re-Acquired at the top.
                .compare_exchange_weak(h, nv, Ordering::Release, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Compare-and-swap `nv` in as the chain head of `rid`, expecting the
    /// head to still be `expected` (which becomes `nv`'s predecessor).
    /// The record-insert path uses this instead of [`push`](Self::push):
    /// an insert is only legal while the chain holds no live version, so
    /// the head observed during that check must still be in place when the
    /// new version is published. Returns whether the CAS won; on failure
    /// `nv` is untouched and still exclusively owned by the caller.
    pub(crate) fn try_push(
        &self,
        rid: RecordId,
        expected: *mut HkVersion,
        nv: *mut HkVersion,
    ) -> bool {
        let head = self.head(rid);
        // SAFETY: nv is exclusively ours until the CAS succeeds.
        // RELAXED: unpublished until the Release CAS; on CAS failure the
        // caller still owns `nv` and nobody else ever saw this store.
        unsafe { (*nv).prev.store(expected, Ordering::Relaxed) };
        // RELAXED: failure-order only — the caller treats failure as retry;
        // no data is read through the failed result.
        head.compare_exchange(expected, nv, Ordering::Release, Ordering::Relaxed)
            .is_ok()
    }

    /// Number of versions in a record's chain (diagnostics; racy).
    pub fn chain_depth(&self, rid: RecordId) -> usize {
        // The epoch pin keeps any version the walk can reach alive: the
        // pruner defers physical destruction past in-flight pins.
        let _g = epoch::pin();
        let mut n = 0;
        let mut cur = self.head(rid).load(Ordering::Acquire);
        while !cur.is_null() {
            n += 1;
            // SAFETY: non-null chain pointers loaded under the epoch pin
            // above stay live — pruners defer frees past in-flight pins.
            cur = unsafe { &*cur }.prev.load(Ordering::Acquire);
        }
        n
    }

    /// Prune the dead suffix of `rid`'s version chain.
    ///
    /// `watermark` is the minimum begin timestamp over all in-flight
    /// transactions (the engine's active-transaction registry): a version
    /// whose end is a real timestamp `e ≤ watermark` is invisible to every
    /// active transaction (their `ts ≥ watermark ≥ e` fails `e > ts`) and
    /// to every future one (the global counter has already passed `e`), so
    /// it — and everything older beneath it — is garbage. Aborted-insert
    /// versions are additionally unlinked one by one wherever they sit.
    ///
    /// A *live* chain head is never pruned (it is the CAS anchor for
    /// writers), so a record under churn converges to one live version.
    /// The one head that **is** reclaimed is the last tombstone: when the
    /// whole chain is a single committed tombstone with `begin ≤
    /// watermark`, the record is logically absent for every in-flight and
    /// future transaction, and a null head gives the same answer — so the
    /// tombstone's end word is sealed (CAS ∞ → begin, which excludes any
    /// concurrent superseder: updates must win that CAS first, and inserts
    /// refuse chains holding committed versions) and the head pointer is
    /// CAS'd to null. This closes the former head-tombstone leak where a
    /// fully-deleted, never-reinserted key retained one version forever.
    ///
    /// Runs under the record's prune try-lock; contenders return 0
    /// immediately. Physical destruction is deferred through `guard`'s
    /// epoch, so concurrent readers mid-walk stay safe. Returns the number
    /// of versions retired.
    pub(crate) fn prune(&self, rid: RecordId, watermark: u64, guard: &epoch::Guard) -> usize {
        let t = &self.tables[rid.table.index()];
        let slot = &t.slots[rid.row as usize];
        let lock = &slot.prune_lock;
        if lock
            // RELAXED: failure-order only — losing the try-lock reads nothing
            // protected by it; the contender just returns.
            .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return 0;
        }
        let mut freed = 0;
        let head = slot.head.load(Ordering::Acquire);
        if !head.is_null() {
            // SAFETY: only pruners free versions, and we hold this record's
            // prune lock; the head itself is never freed.
            let mut pred = unsafe { &*head };
            loop {
                let cur = pred.prev.load(Ordering::Acquire);
                if cur.is_null() {
                    break;
                }
                // SAFETY: reachable from `pred` under the prune lock.
                let v = unsafe { &*cur };
                if v.is_aborted_garbage() {
                    // Unlink the single aborted version (readers skip it
                    // anyway; the epoch defers its destruction past them).
                    let next = v.prev.load(Ordering::Acquire);
                    pred.prev.store(next, Ordering::Release);
                    // SAFETY: unlinked under the prune lock; Box-allocated.
                    unsafe { guard.defer_unchecked(move || drop(Box::from_raw(cur))) };
                    freed += 1;
                    continue; // same pred, new successor
                }
                match unpack(v.end.load(Ordering::Acquire)) {
                    WordView::Ts(e) if e != END_INF && e <= watermark => {
                        // Dead: unlink and retire the whole suffix. Every
                        // older version is dead too (committed with an even
                        // smaller end, or aborted garbage).
                        pred.prev.store(std::ptr::null_mut(), Ordering::Release);
                        let mut dead = cur;
                        while !dead.is_null() {
                            // SAFETY: the suffix is unreachable from the
                            // head; destruction deferred past live pins.
                            let older = unsafe { &*dead }.prev.load(Ordering::Acquire);
                            let p = dead;
                            // SAFETY: as above — unreachable suffix node.
                            unsafe { guard.defer_unchecked(move || drop(Box::from_raw(p))) };
                            freed += 1;
                            dead = older;
                        }
                        break;
                    }
                    _ => pred = v,
                }
            }
        }
        // Head reclamation: if what remains is a single committed tombstone
        // old enough that every in-flight and future reader sees absence
        // either way, unlink it. The end-word seal must come first — a
        // successful CAS (∞ → begin) excludes every future supersede, and
        // inserts cannot target a chain holding a committed version, so
        // after the seal no push can move the head and the head CAS below
        // is uncontended. A failed seal means a writer superseded the
        // tombstone first (a re-insert): leave everything to them.
        let head = slot.head.load(Ordering::Acquire);
        if !head.is_null() {
            // SAFETY: reachable under the prune lock; epoch-deferred frees.
            let h = unsafe { &*head };
            if h.is_tombstone() && h.prev.load(Ordering::Acquire).is_null() {
                if let WordView::Ts(b) = unpack(h.begin.load(Ordering::Acquire)) {
                    if b != ABORTED_SENTINEL
                        && b <= watermark
                        && h.end
                            // RELAXED: failure-order only — failure means a
                            // writer superseded the tombstone; we abandon
                            // without reading through the result.
                            .compare_exchange(END_INF, b, Ordering::AcqRel, Ordering::Relaxed)
                            .is_ok()
                        && slot
                            .head
                            .compare_exchange(
                                head,
                                std::ptr::null_mut(),
                                Ordering::AcqRel,
                                // RELAXED: failure-order only, as above.
                                Ordering::Relaxed,
                            )
                            .is_ok()
                    {
                        // SAFETY: unlinked; destruction deferred past pins.
                        unsafe { guard.defer_unchecked(move || drop(Box::from_raw(head))) };
                        freed += 1;
                    }
                }
            }
        }
        lock.store(0, Ordering::Release);
        freed
    }
}

impl Drop for HekatonStore {
    fn drop(&mut self) {
        for t in &self.tables {
            for s in t.slots.iter() {
                // RELAXED: `&mut self` in Drop proves exclusive access; all
                // prior writers are already synchronized-with.
                let mut cur = s.head.load(Ordering::Relaxed);
                while !cur.is_null() {
                    // SAFETY: exclusive access via &mut self (Drop).
                    let v = unsafe { Box::from_raw(cur) };
                    // RELAXED: as above — no concurrency in Drop.
                    cur = v.prev.load(Ordering::Relaxed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::version::END_INF;

    #[test]
    fn seeding_creates_one_committed_version_per_row() {
        let s = HekatonStore::new(&[(4, 8)]);
        s.seed_u64(0, |r| r * 2);
        for row in 0..4 {
            let rid = RecordId::new(0, row);
            assert_eq!(s.chain_depth(rid), 1);
            let head = s.head(rid).load(Ordering::Acquire);
            // SAFETY: single-threaded test; the seeded head is live.
            let v = unsafe { &*head };
            assert_eq!(bohm_common::value::get_u64(v.data(), 0), row * 2);
            assert_eq!(v.end.load(Ordering::Relaxed), END_INF);
        }
    }

    #[test]
    fn push_links_chain() {
        let s = HekatonStore::new(&[(1, 8)]);
        s.seed_u64(0, |_| 1);
        let rid = RecordId::new(0, 0);
        let t = crate::txn::HkTxn::new(5);
        let nv = Box::into_raw(Box::new(HkVersion::uncommitted(
            &t,
            bohm_common::value::of_u64(2, 8),
        )));
        s.push(rid, nv);
        assert_eq!(s.chain_depth(rid), 2);
        assert_eq!(s.head(rid).load(Ordering::Acquire), nv);
    }

    #[test]
    fn multiple_tables_are_independent() {
        let s = HekatonStore::new(&[(2, 8), (3, 16)]);
        s.seed_u64(0, |_| 1);
        s.seed_u64(1, |_| 2);
        assert_eq!(s.rows(0), 2);
        assert_eq!(s.rows(1), 3);
        assert_eq!(s.record_size(RecordId::new(1, 0)), 16);
    }
}

/// Controlled-scheduler models of the version-chain protocol
/// (`RUSTFLAGS="--cfg bohm_modelcheck" cargo test -p bohm-hekaton modelcheck`).
///
/// Push, prune and scan race on one record with every interleaving the
/// seeds reach. The invariants the models assert are the ones the stress
/// tests can only sample: a scanner never observes a depth outside the
/// set of chain shapes the protocol can produce, the seeded committed
/// version is never reclaimed, and the prune try-lock plus epoch deferral
/// never let a reader walk freed memory (the race detector and address
/// sanitizer of the model runtime would flag it).
#[cfg(all(test, bohm_modelcheck))]
mod modelcheck {
    use super::*;
    use bohm_sync::model;
    use std::sync::Arc;

    /// One record seeded with a committed version; a writer stacks an
    /// aborted uncommitted version and then a committed successor on top
    /// while a pruner (watermark 0: only aborted garbage is reclaimable)
    /// and a depth scanner race the pushes.
    fn push_prune_scan_model() {
        let s = Arc::new(HekatonStore::new(&[(1, 8)]));
        s.seed_u64(0, |_| 1);
        let rid = RecordId::new(0, 0);
        let writer = {
            let s = Arc::clone(&s);
            bohm_sync::thread::spawn(move || {
                let t = crate::txn::HkTxn::new(5);
                let aborted = Box::into_raw(Box::new(HkVersion::uncommitted(
                    &t,
                    bohm_common::value::of_u64(2, 8),
                )));
                s.push(rid, aborted);
                // SAFETY: published above; the store now owns the
                // allocation and frees it via prune's epoch deferral.
                unsafe { &*aborted }.mark_aborted();
                // A committed successor on top, leaving the aborted
                // version as a mid-chain node prune must unlink.
                let committed = Box::into_raw(Box::new(HkVersion::committed(
                    7,
                    bohm_common::value::of_u64(3, 8),
                )));
                s.push(rid, committed);
            })
        };
        let pruner = {
            let s = Arc::clone(&s);
            bohm_sync::thread::spawn(move || {
                let g = epoch::pin();
                s.prune(rid, 0, &g);
            })
        };
        let scanner = {
            let s = Arc::clone(&s);
            bohm_sync::thread::spawn(move || {
                let d = s.chain_depth(rid);
                // seed | {aborted,committed} ∪ seed | all three.
                assert!((1..=3).contains(&d), "impossible chain depth {d}");
            })
        };
        writer.join().unwrap();
        pruner.join().unwrap();
        scanner.join().unwrap();
        // Quiescent cleanup: whatever the racing pruner managed, one more
        // pass must leave exactly [committed(7), seed] — the aborted node
        // gone, the live seed untouched.
        let g = epoch::pin();
        s.prune(rid, 0, &g);
        drop(g);
        assert_eq!(s.chain_depth(rid), 2);
        let head = s.head(rid).load(Ordering::Acquire);
        // SAFETY: all model threads joined; no concurrent reclamation.
        let h = unsafe { &*head };
        assert_eq!(bohm_common::value::get_u64(h.data(), 0), 3);
        let seed = h.prev.load(Ordering::Acquire);
        // SAFETY: as above — quiescent chain walk.
        assert_eq!(bohm_common::value::get_u64(unsafe { &*seed }.data(), 0), 1);
    }

    #[test]
    fn push_prune_scan_explored() {
        model::explore(model::Options::default(), push_prune_scan_model);
    }
}
