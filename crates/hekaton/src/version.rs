//! Version objects with timestamp-or-transaction `begin`/`end` words.
//!
//! Larson et al.'s central representation: a version's `begin` and `end`
//! fields each hold either a real timestamp or a reference to the
//! transaction that is creating / invalidating it. We encode the reference
//! as a tagged pointer (bit 63 set). Post-processing replaces markers with
//! timestamps after commit; aborted creations become permanent garbage
//! (begin = `ABORTED_SENTINEL`) that readers skip — matching the paper's
//! "no incremental GC" configuration for these baselines.

use crate::txn::HkTxn;
use bohm_sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::cell::UnsafeCell;

/// Tag bit: the word is a pointer to an [`HkTxn`], not a timestamp.
pub const TXN_FLAG: u64 = 1 << 63;
/// `end` value of a live latest version.
pub const END_INF: u64 = !TXN_FLAG; // all bits but the tag: flag clear
/// `begin` value of a version whose creating transaction aborted.
pub const ABORTED_SENTINEL: u64 = END_INF - 1;

/// Pack a transaction reference into a version word.
#[inline]
pub fn txn_word(t: *const HkTxn) -> u64 {
    debug_assert_eq!((t as u64) & TXN_FLAG, 0, "kernel-half pointers unsupported");
    (t as u64) | TXN_FLAG
}

/// Interpret a version word.
#[inline]
pub fn unpack(word: u64) -> WordView {
    if word & TXN_FLAG != 0 {
        WordView::Txn((word & !TXN_FLAG) as *const HkTxn)
    } else {
        WordView::Ts(word)
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WordView {
    Ts(u64),
    Txn(*const HkTxn),
}

/// One version of one record.
pub struct HkVersion {
    pub begin: AtomicU64,
    pub end: AtomicU64,
    /// Older version. Immutable once the version is published, **except**
    /// for the chain pruner, which unlinks dead suffixes under the record's
    /// prune lock (see `HekatonStore::prune`).
    pub prev: AtomicPtr<HkVersion>,
    /// Deletion tombstone: this version's visibility interval means "the
    /// record does not exist". Set at construction, immutable.
    tombstone: bool,
    /// Payload, written by the creating transaction before publication and
    /// immutable afterwards (empty for tombstones).
    data: UnsafeCell<Box<[u8]>>,
}

// SAFETY: `data` is written only before the version becomes reachable
// (publication via the record slot's CAS is the release point).
unsafe impl Send for HkVersion {}
// SAFETY: same pre-publication argument as `Send` above.
unsafe impl Sync for HkVersion {}

impl HkVersion {
    /// A committed version (preloading).
    pub fn committed(begin_ts: u64, data: Box<[u8]>) -> Self {
        Self {
            begin: AtomicU64::new(begin_ts),
            end: AtomicU64::new(END_INF),
            prev: AtomicPtr::new(std::ptr::null_mut()),
            tombstone: false,
            data: UnsafeCell::new(data),
        }
    }

    /// A version under creation by `creator` (begin holds the txn marker).
    pub fn uncommitted(creator: *const HkTxn, data: Box<[u8]>) -> Self {
        Self {
            begin: AtomicU64::new(txn_word(creator)),
            end: AtomicU64::new(END_INF),
            prev: AtomicPtr::new(std::ptr::null_mut()),
            tombstone: false,
            data: UnsafeCell::new(data),
        }
    }

    /// A deletion tombstone under creation by `creator`: once committed,
    /// readers in its visibility window observe the record as absent.
    pub fn uncommitted_tombstone(creator: *const HkTxn) -> Self {
        Self {
            begin: AtomicU64::new(txn_word(creator)),
            end: AtomicU64::new(END_INF),
            prev: AtomicPtr::new(std::ptr::null_mut()),
            tombstone: true,
            data: UnsafeCell::new(Box::new([])),
        }
    }

    /// Is this version a deletion tombstone?
    #[inline]
    pub fn is_tombstone(&self) -> bool {
        self.tombstone
    }

    #[inline]
    pub fn data(&self) -> &[u8] {
        // SAFETY: immutable after publication (see field docs).
        unsafe { &*self.data.get() }
    }

    /// Mark the creation aborted: readers skip this version forever.
    pub fn mark_aborted(&self) {
        self.begin.store(ABORTED_SENTINEL, Ordering::Release);
    }

    #[inline]
    pub fn is_aborted_garbage(&self) -> bool {
        self.begin.load(Ordering::Acquire) == ABORTED_SENTINEL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_packing_roundtrip() {
        let t = Box::into_raw(Box::new(HkTxn::new(1)));
        match unpack(txn_word(t)) {
            WordView::Txn(p) => assert_eq!(p, t as *const HkTxn),
            _ => panic!("expected txn view"),
        }
        match unpack(42) {
            WordView::Ts(ts) => assert_eq!(ts, 42),
            _ => panic!("expected ts view"),
        }
        // SAFETY: test-local allocation.
        drop(unsafe { Box::from_raw(t) });
    }

    #[test]
    fn sentinels_are_timestamps_not_pointers() {
        assert!(matches!(unpack(END_INF), WordView::Ts(_)));
        assert!(matches!(unpack(ABORTED_SENTINEL), WordView::Ts(_)));
        assert_ne!(END_INF, ABORTED_SENTINEL);
    }

    #[test]
    fn aborted_marking() {
        let t = HkTxn::new(1);
        let v = HkVersion::uncommitted(&t, bohm_common::value::of_u64(1, 8));
        assert!(!v.is_aborted_garbage());
        v.mark_aborted();
        assert!(v.is_aborted_garbage());
    }

    #[test]
    fn committed_version_exposes_data() {
        let v = HkVersion::committed(0, bohm_common::value::of_u64(7, 8));
        assert_eq!(bohm_common::value::get_u64(v.data(), 0), 7);
        assert_eq!(v.end.load(Ordering::Relaxed), END_INF);
    }
}
