//! Hekaton-style optimistic multi-version concurrency control and Snapshot
//! Isolation baselines (Larson et al., VLDB 2011 — the paper's "Hekaton"
//! and "SI" comparison points, §4).
//!
//! Protocol properties deliberately reproduced from the paper's setup:
//!
//! * **Global timestamp counter**: one shared `AtomicU64`, atomically
//!   incremented at transaction begin *and* commit ("incremented at least
//!   twice for every transaction, regardless of the presence of actual
//!   conflicts", §4.2.2) — the scalability bottleneck Figs. 6/7 expose.
//! * **Versions carry `begin`/`end` words holding either a timestamp or a
//!   transaction marker** (here: a tagged pointer to the transaction
//!   object), exactly Larson et al.'s design.
//! * **Commit dependencies**: readers may speculatively consume uncommitted
//!   data of a `Preparing` transaction and then cannot commit until the
//!   producer does; producer aborts cascade (§4: "our Hekaton and SI
//!   implementations include support for commit dependencies").
//! * **First-writer-wins write-write conflicts**: updating a version whose
//!   `end` is already claimed aborts immediately.
//! * **Serializable mode** validates the read set at commit (re-resolving
//!   each read as of the end timestamp); **SI mode** skips read validation
//!   entirely and is therefore subject to write skew (demonstrated in the
//!   tests).
//! * **No incremental garbage collection and a fixed-size array index**,
//!   the configuration the paper runs these baselines in (§4).
//!
//! Transaction objects referenced from version words are reclaimed through
//! `crossbeam-epoch` once post-processing has replaced the markers with
//! real timestamps.

pub mod engine;
pub mod store;
pub mod txn;
pub mod version;

pub use engine::{Hekaton, HkWorker, IsolationLevel};
pub use store::HekatonStore;
