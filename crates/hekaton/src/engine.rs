//! The Hekaton / SI engine proper.

use crate::store::HekatonStore;
use crate::txn::{state, HkTxn};
use crate::version::{txn_word, unpack, HkVersion, WordView, END_INF};
use bohm_common::engine::{Engine, ExecOutcome};
use bohm_common::{AbortReason, Access, RecordId, Txn};
use bohm_sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use bohm_sync::Mutex;
use crossbeam_epoch as epoch;
use crossbeam_utils::CachePadded;
use std::sync::Arc;

/// Isolation level of a [`Hekaton`] instance.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IsolationLevel {
    /// Full serializability: read-set validation at commit (Larson et al.'s
    /// optimistic serializable protocol — the paper's "Hekaton").
    Serializable,
    /// Snapshot isolation: write-write conflicts only; subject to write
    /// skew (the paper's "SI").
    SnapshotIsolation,
}

/// Internal read/write tracking of one attempt.
struct ReadRec {
    rid: RecordId,
    /// Version observed, or null when the read observed **absence** (the
    /// record does not exist at the snapshot). Absent observations are
    /// validated at commit exactly like present ones: re-resolving at the
    /// end timestamp must still find nothing.
    version: *const HkVersion,
}

struct WriteRec {
    rid: RecordId,
    /// Version this write superseded, or null for a record **insert**
    /// (there was nothing to supersede).
    old: *const HkVersion,
    new: *const HkVersion,
}

/// Upper bound on concurrently-live workers (slots are recycled when a
/// worker drops, so this bounds concurrency, not total sessions).
const ACTIVE_SLOTS: usize = 512;

/// The active-transaction registry: one cache-padded timestamp slot per
/// live worker. A worker publishes its begin timestamp for the duration of
/// each transaction attempt and `u64::MAX` while idle; the minimum over all
/// slots is the GC **watermark** — no in-flight transaction can read below
/// it, and future transactions draw strictly larger timestamps, so versions
/// whose end timestamp is at or below it are unreachable garbage.
struct SlotPool {
    active: Box<[CachePadded<AtomicU64>]>,
    next: AtomicUsize,
    free: Mutex<Vec<usize>>,
}

impl SlotPool {
    fn new() -> Self {
        let mut active = Vec::with_capacity(ACTIVE_SLOTS);
        active.resize_with(ACTIVE_SLOTS, || CachePadded::new(AtomicU64::new(u64::MAX)));
        Self {
            active: active.into_boxed_slice(),
            next: AtomicUsize::new(0),
            free: Mutex::new(Vec::new()),
        }
    }

    fn acquire(&self) -> usize {
        if let Some(slot) = self.free.lock().pop() {
            return slot;
        }
        // RELAXED: slot ids only need to be unique; the mutex-protected
        // free list above is the sole other coordination point.
        let slot = self.next.fetch_add(1, Ordering::Relaxed);
        assert!(
            slot < ACTIVE_SLOTS,
            "more than {ACTIVE_SLOTS} concurrent Hekaton workers"
        );
        slot
    }

    /// Minimum begin timestamp over all in-flight transactions, or
    /// `u64::MAX` when the engine is idle.
    ///
    /// SeqCst loads: the sweep-side safety argument
    /// (see [`sweep_watermark`]) places this scan in the single total
    /// order against workers' bound-publish stores and counter draws.
    fn watermark(&self) -> u64 {
        let n = self.next.load(Ordering::SeqCst).min(ACTIVE_SLOTS);
        self.active[..n]
            .iter()
            .map(|s| s.load(Ordering::SeqCst))
            .min()
            .unwrap_or(u64::MAX)
    }
}

/// The watermark a **sweep** may prune under: the registry minimum,
/// clamped to a global-counter snapshot taken *before* the registry scan.
///
/// The raw registry minimum is only safe for commit-riding pruning, where
/// the caller's own registered begin timestamp bounds it from above. A
/// sweeper has no such bound: on an idle registry it would read
/// `u64::MAX`, and if it stalls there while a worker registers at `b` and
/// another commits a superseding version at `e > b`, pruning with MAX
/// would free the version the first worker must still observe at `b`.
/// Clamping to a prior counter snapshot `c` restores the invariant: any
/// transaction the registry scan missed draws `b ≥ c` (its SeqCst counter
/// draw is ordered after our SeqCst snapshot, by the same total-order
/// reasoning as the publish-before-draw rule in `execute`), so every
/// version the sweep frees has `end ≤ c ≤ b` — already invisible to it.
fn sweep_watermark(counter: &AtomicU64, slots: &SlotPool) -> u64 {
    let snapshot = counter.load(Ordering::SeqCst);
    snapshot.min(slots.watermark())
}

/// Per-worker reusable state.
pub struct HkWorker {
    reads: Vec<ReadRec>,
    writes: Vec<WriteRec>,
    scratch: bohm_common::ExecScratch,
    /// This worker's slot in the active-transaction registry.
    slot: usize,
    slots: Arc<SlotPool>,
    /// Xorshift state drawing the post-commit chain-pruning sample.
    prune_rng: u64,
}

impl Drop for HkWorker {
    fn drop(&mut self) {
        self.slots.active[self.slot].store(u64::MAX, Ordering::Release);
        self.slots.free.lock().push(self.slot);
    }
}

// SAFETY: raw version pointers are only dereferenced while the creating
// attempt's epoch pin is held (the pruner defers frees past live pins).
unsafe impl Send for HkWorker {}

/// State shared between the engine and its background sweeper thread.
struct SweepShared {
    store: Arc<HekatonStore>,
    slots: Arc<SlotPool>,
    /// The engine's global timestamp counter — the sweep watermark is
    /// clamped to a snapshot of it (see [`sweep_watermark`]).
    counter: Arc<CachePadded<AtomicU64>>,
    pruned: Arc<AtomicU64>,
    stop: AtomicBool,
}

/// The running background sweeper (see [`Hekaton::sweep_now`] for the
/// synchronous equivalent).
struct Sweeper {
    shared: Arc<SweepShared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for Sweeper {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Lifecycle of the background sweeper.
enum SweepState {
    /// GC on, sweeper not yet spawned (spawns lazily on the first worker,
    /// so builder-style configuration calls win the race trivially).
    Pending,
    /// The field is held purely for its `Drop` (stop flag + join).
    Running(#[allow(dead_code)] Sweeper),
    Disabled,
}

/// Rows examined per sweeper wakeup (bounds the latency impact of one
/// epoch pin while still covering large tables in a few wakeups).
const SWEEP_SLICE: usize = 1024;

/// One background-sweep slice over the slot array: prune up to
/// [`SWEEP_SLICE`] rows starting at the cursor — but never more than one
/// full lap, so a tiny table is visited once per wakeup rather than
/// hammered in a loop (the commit-riding pruner shares the per-record
/// try-locks and must not be starved). The watermark is computed once per
/// slice: a stale (clamped) watermark only *delays* reclamation by at
/// most one slice, and re-scanning the registry per row would ping the
/// exact cache lines every worker writes twice per transaction. Frees
/// are epoch-deferred. Returns versions retired.
fn sweep_slice(shared: &SweepShared, cursor: &mut (usize, usize)) -> usize {
    let ntables = shared.store.table_count();
    let total_rows: usize = (0..ntables).map(|t| shared.store.rows(t as u32)).sum();
    if total_rows == 0 {
        return 0;
    }
    let watermark = sweep_watermark(&shared.counter, &shared.slots);
    let guard = epoch::pin();
    let mut freed = 0;
    let (ref mut table, ref mut row) = *cursor;
    for _ in 0..SWEEP_SLICE.min(total_rows) {
        while *row >= shared.store.rows(*table as u32) {
            *row = 0;
            *table = (*table + 1) % ntables;
        }
        let rid = RecordId::new(*table as u32, *row as u64);
        freed += shared.store.prune(rid, watermark, &guard);
        *row += 1;
    }
    if freed > 0 {
        // RELAXED: monotonic statistics counter.
        shared.pruned.fetch_add(freed as u64, Ordering::Relaxed);
    }
    freed
}

/// Main loop of the background sweeper thread. Consecutive empty sweeps
/// back the wakeup interval off exponentially (1 ms → 32 ms): an idle
/// engine costs a few dozen wakeups per second, while an engine with
/// reclaimable garbage is swept at full cadence.
fn sweep_loop(shared: Arc<SweepShared>) {
    let mut cursor = (0usize, 0usize);
    let mut idle = 0u32;
    while !shared.stop.load(Ordering::Acquire) {
        if sweep_slice(&shared, &mut cursor) == 0 {
            idle = (idle + 1).min(6);
            std::thread::sleep(std::time::Duration::from_micros(500u64 << idle));
        } else {
            idle = 0;
            std::thread::yield_now();
        }
    }
}

/// Hekaton-style MVCC engine (optimistic, with a global timestamp counter
/// and commit dependencies). See the crate docs for the protocol.
pub struct Hekaton {
    store: Arc<HekatonStore>,
    /// **The** global counter (paper §2.1/§4.2.2). Deliberately a single
    /// contended cache line — that contention is a measured phenomenon.
    /// (Arc'd so the background sweeper can snapshot it for its clamped
    /// watermark; workers still touch exactly one contended line.)
    counter: Arc<CachePadded<AtomicU64>>,
    isolation: IsolationLevel,
    /// Allow speculative reads of uncommitted (Preparing) data — "commit
    /// dependencies". The paper's baselines have this on.
    speculate: bool,
    /// Active-transaction registry driving the chain pruner's watermark.
    slots: Arc<SlotPool>,
    /// Incremental chain pruning on (default). The paper's baselines run
    /// with "no incremental garbage collection"; [`without_gc`](Self::without_gc)
    /// restores that configuration for paper-faithful ablations.
    gc: bool,
    /// Versions retired by the pruner (diagnostics).
    pruned: Arc<AtomicU64>,
    /// Idle-time background sweep over the slot array. Commit-riding
    /// pruning only fires on records that committing transactions touch, so
    /// a key never read or written again would keep its dead suffix
    /// indefinitely; the sweeper closes that leak. Spawned lazily with the
    /// first worker; [`without_gc`](Self::without_gc) and
    /// [`without_background_sweep`](Self::without_background_sweep) disable it.
    sweep: Mutex<SweepState>,
}

impl Hekaton {
    pub fn new(store: HekatonStore, isolation: IsolationLevel) -> Self {
        Self {
            store: Arc::new(store),
            counter: Arc::new(CachePadded::new(AtomicU64::new(1))), // ts 0 = preload
            isolation,
            speculate: true,
            slots: Arc::new(SlotPool::new()),
            gc: true,
            pruned: Arc::new(AtomicU64::new(0)),
            sweep: Mutex::new(SweepState::Pending),
        }
    }

    fn sweep_shared(&self) -> Arc<SweepShared> {
        Arc::new(SweepShared {
            store: Arc::clone(&self.store),
            slots: Arc::clone(&self.slots),
            counter: Arc::clone(&self.counter),
            pruned: Arc::clone(&self.pruned),
            stop: AtomicBool::new(false),
        })
    }

    /// Spawn the background sweeper if it is still pending (first worker).
    fn ensure_sweeper(&self) {
        let mut st = self.sweep.lock();
        if matches!(*st, SweepState::Pending) {
            let shared = self.sweep_shared();
            let handle = {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name("hekaton-sweep".into())
                    .spawn(move || sweep_loop(shared))
                    .expect("spawn hekaton sweeper")
            };
            *st = SweepState::Running(Sweeper {
                shared,
                handle: Some(handle),
            });
        }
    }

    fn disable_sweeper(&self) {
        let mut st = self.sweep.lock();
        // Dropping a running sweeper stops and joins it.
        *st = SweepState::Disabled;
    }

    /// Run one full synchronous sweep over every slot of every table with
    /// the current watermark (deterministic alternative to waiting for the
    /// background thread; used by tests and quiescent maintenance windows).
    /// Returns the number of versions retired.
    pub fn sweep_now(&self) -> usize {
        let watermark = sweep_watermark(&self.counter, &self.slots);
        let guard = epoch::pin();
        let mut freed = 0;
        for table in 0..self.store.table_count() {
            for row in 0..self.store.rows(table as u32) {
                let rid = RecordId::new(table as u32, row as u64);
                freed += self.store.prune(rid, watermark, &guard);
            }
        }
        if freed > 0 {
            // RELAXED: monotonic statistics counter.
            self.pruned.fetch_add(freed as u64, Ordering::Relaxed);
        }
        freed
    }

    /// The paper's "Hekaton" configuration.
    pub fn serializable(store: HekatonStore) -> Self {
        Self::new(store, IsolationLevel::Serializable)
    }

    /// The paper's "SI" configuration.
    pub fn snapshot_isolation(store: HekatonStore) -> Self {
        Self::new(store, IsolationLevel::SnapshotIsolation)
    }

    /// Disable commit dependencies (ablation).
    pub fn without_speculation(mut self) -> Self {
        self.speculate = false;
        self
    }

    /// Disable the version-chain pruner *and* the background sweep — the
    /// paper's original "no incremental GC" configuration, under which
    /// chains grow without bound (see `versions_accumulate_without_gc`).
    pub fn without_gc(mut self) -> Self {
        self.gc = false;
        self.disable_sweeper();
        self
    }

    /// Keep commit-riding pruning but disable the idle-time background
    /// sweep (ablation: reinstates the "a key never touched again keeps
    /// its dead suffix" behaviour the sweep exists to fix).
    pub fn without_background_sweep(self) -> Self {
        self.disable_sweeper();
        self
    }

    /// Versions reclaimed by the chain pruner so far.
    pub fn pruned_versions(&self) -> u64 {
        // RELAXED: statistics read; callers tolerate approximate values.
        self.pruned.load(Ordering::Relaxed)
    }

    pub fn store(&self) -> &HekatonStore {
        &self.store
    }

    /// Current counter value (diagnostics: shows ≥ 2 bumps per txn).
    pub fn counter_value(&self) -> u64 {
        // RELAXED: diagnostic snapshot of the timestamp counter.
        self.counter.load(Ordering::Relaxed)
    }

    /// Resolve the version of `rid` visible at `ts` for transaction `me`.
    ///
    /// `Err(())` means the resolution consumed state of an aborted
    /// transaction (or needed speculation with it disabled) and the caller
    /// must concurrency-abort. `Ok(None)` means no visible version.
    fn resolve(
        &self,
        rid: RecordId,
        ts: u64,
        me: Option<&HkTxn>,
    ) -> Result<Option<*const HkVersion>, ()> {
        // A walk can transiently find nothing: if the head was loaded just
        // before a concurrent writer pushed its new version, the old head's
        // end word already carries the writer's marker (speculatively
        // invisible once it prepares) while the new version is not on our
        // snapshot of the chain yet. Re-walk from a fresh head; the window
        // closes as soon as the writer's push lands (it immediately follows
        // the end-word CAS), so a handful of retries always suffices. A
        // genuinely absent record — a null head, or a chain holding only
        // versions that can never become visible at `ts` — is judged `None`.
        let backoff = crossbeam_utils::Backoff::new();
        for _ in 0..64 {
            let mut cur = self.store.head(rid).load(Ordering::Acquire);
            while !cur.is_null() {
                // SAFETY: every caller holds an epoch pin; the pruner
                // defers version destruction past in-flight pins.
                let v = unsafe { &*cur };
                if self.begin_visible(v, ts, me)? && self.end_visible(v, ts, me)? {
                    return Ok(Some(cur));
                }
                cur = v.prev.load(Ordering::Acquire);
            }
            if self.stably_absent(rid, ts) {
                return Ok(None); // record does not exist at ts
            }
            backoff.snooze();
        }
        // Still racing after many walks: treat as a concurrency conflict.
        Err(())
    }

    /// Is `rid` *stably* absent at `ts` — i.e. can no version in its chain
    /// ever become visible at `ts`? True for a null head (record never
    /// inserted) and for chains holding only aborted-insert garbage,
    /// versions committed after `ts`, and versions whose end is a final
    /// real timestamp ≤ `ts` (end words move ∞ → txn marker → timestamp;
    /// a real timestamp is terminal — this is how a sealed head tombstone
    /// mid-reclamation reads as absence instead of spinning the walker).
    /// Anything else — e.g. an end word still carrying a preparing
    /// writer's marker — may be the transient race described in
    /// [`resolve`](Self::resolve), so the caller re-walks.
    fn stably_absent(&self, rid: RecordId, ts: u64) -> bool {
        let mut cur = self.store.head(rid).load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: callers hold an epoch pin (see `resolve`).
            let v = unsafe { &*cur };
            match unpack(v.begin.load(Ordering::Acquire)) {
                WordView::Ts(crate::version::ABORTED_SENTINEL) => {}
                WordView::Ts(b) if b > ts => {}
                WordView::Ts(_) => match unpack(v.end.load(Ordering::Acquire)) {
                    WordView::Ts(e) if e != END_INF && e <= ts => {}
                    _ => return false,
                },
                _ => return false,
            }
            cur = v.prev.load(Ordering::Acquire);
        }
        true
    }

    /// Load a transaction's state, waiting out the instants-long `ENDING`
    /// window in which its end timestamp is drawn but not yet published.
    #[inline]
    fn settled_state(&self, t: &HkTxn) -> u32 {
        let mut s = t.state();
        if s == state::ENDING {
            let backoff = crossbeam_utils::Backoff::new();
            while s == state::ENDING {
                backoff.snooze();
                s = t.state();
            }
        }
        s
    }

    fn begin_visible(&self, v: &HkVersion, ts: u64, me: Option<&HkTxn>) -> Result<bool, ()> {
        match unpack(v.begin.load(Ordering::Acquire)) {
            WordView::Ts(crate::version::ABORTED_SENTINEL) => Ok(false),
            WordView::Ts(b) => Ok(b <= ts),
            WordView::Txn(p) => {
                if let Some(m) = me {
                    if std::ptr::eq(p, m) {
                        return Ok(true); // own write
                    }
                }
                // SAFETY: txn objects are epoch-protected while referenced
                // from version words; callers hold a pinned guard.
                let producer = unsafe { &*p };
                match self.settled_state(producer) {
                    state::ACTIVE => Ok(false),
                    state::PREPARING => {
                        if producer.end_ts() <= ts {
                            self.speculative_dep(producer, me)?;
                            Ok(true)
                        } else {
                            Ok(false)
                        }
                    }
                    state::COMMITTED => Ok(producer.end_ts() <= ts),
                    state::ABORTED => Ok(false),
                    _ => unreachable!(),
                }
            }
        }
    }

    fn end_visible(&self, v: &HkVersion, ts: u64, me: Option<&HkTxn>) -> Result<bool, ()> {
        match unpack(v.end.load(Ordering::Acquire)) {
            WordView::Ts(END_INF) => Ok(true),
            WordView::Ts(e) => Ok(e > ts),
            WordView::Txn(p) => {
                if let Some(m) = me {
                    if std::ptr::eq(p, m) {
                        return Ok(false); // superseded by our own write
                    }
                }
                // SAFETY: as in begin_visible.
                let ender = unsafe { &*p };
                match self.settled_state(ender) {
                    state::ACTIVE => Ok(true),
                    state::PREPARING => {
                        if ender.end_ts() <= ts {
                            // Speculatively invisible: our fate depends on
                            // the ender committing.
                            self.speculative_dep(ender, me)?;
                            Ok(false)
                        } else {
                            Ok(true)
                        }
                    }
                    state::COMMITTED => Ok(ender.end_ts() > ts),
                    state::ABORTED => Ok(true),
                    _ => unreachable!(),
                }
            }
        }
    }

    /// Register a commit dependency of `me` on `producer`.
    fn speculative_dep(&self, producer: &HkTxn, me: Option<&HkTxn>) -> Result<(), ()> {
        let Some(m) = me else {
            // Diagnostic reads never race with Preparing txns (quiescence).
            return Ok(());
        };
        if !self.speculate {
            return Err(()); // speculation disabled: treat as conflict
        }
        match producer.register_dependent(m) {
            Ok(_) => Ok(()),
            Err(()) => Err(()), // producer aborted under us
        }
    }

    /// First-writer-wins update: supersede the version this transaction
    /// read (or, for blind writes, the version visible to it) and publish a
    /// new uncommitted version.
    fn install_write(
        &self,
        rid: RecordId,
        data: &[u8],
        me: &HkTxn,
        reads: &[ReadRec],
        w: &mut Vec<WriteRec>,
    ) -> Result<(), ()> {
        // An RMW must supersede exactly the version it read: re-resolving
        // here could land on a *newer* speculatively-visible version and
        // silently lose our read→write dependency (a lost update). The CAS
        // below then fails if anything superseded our read version in the
        // meantime, which is precisely the write-write/anti-dependency
        // conflict that must abort.
        let old = if let Some(prev) = w.iter().rev().find(|r| r.rid == rid) {
            // Second write to the same record in one transaction: build on
            // our own uncommitted version.
            prev.new
        } else if let Some(r) = reads.iter().rev().find(|r| r.rid == rid) {
            r.version // null ⇒ we read "absent": the write is the insert
        } else {
            match self.resolve(rid, me.begin_ts, Some(me))? {
                Some(v) => v,
                None => std::ptr::null(), // blind write of a fresh key: insert
            }
        };
        if old.is_null() {
            return self.install_insert(rid, data, me, w);
        }
        // SAFETY: store-lifetime versions.
        // SAFETY: non-null resolve result, live under our epoch pin.
        let old_ref = unsafe { &*old };
        if old_ref
            .end
            .compare_exchange(END_INF, txn_word(me), Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return Err(()); // write-write conflict: first writer wins
        }
        let nv = Box::into_raw(Box::new(HkVersion::uncommitted(me, data.into())));
        self.store.push(rid, nv);
        w.push(WriteRec { rid, old, new: nv });
        Ok(())
    }

    /// Insert a brand-new record: publish an uncommitted first version of
    /// `rid`. First-writer-wins is enforced on the chain head itself — the
    /// insert only goes through while the chain holds nothing but aborted
    /// garbage, via CAS against the head observed during that check. Any
    /// concurrent insert/commit of the key moves the head and fails the
    /// CAS; any live (uncommitted or committed-later) version found during
    /// the walk is a conflict, and the retry re-resolves with a fresh
    /// begin timestamp (finding the record and taking the update path).
    fn install_insert(
        &self,
        rid: RecordId,
        data: &[u8],
        me: &HkTxn,
        w: &mut Vec<WriteRec>,
    ) -> Result<(), ()> {
        let head = self.store.head(rid).load(Ordering::Acquire);
        // The whole chain must be aborted-insert garbage (or empty): a live
        // version anywhere means the key is not insertable at this point.
        let mut cur = head;
        while !cur.is_null() {
            // SAFETY: caller holds an epoch pin (see `resolve`).
            let v = unsafe { &*cur };
            if !v.is_aborted_garbage() {
                return Err(());
            }
            cur = v.prev.load(Ordering::Acquire);
        }
        let nv = Box::into_raw(Box::new(HkVersion::uncommitted(me, data.into())));
        if self.store.try_push(rid, head, nv) {
            w.push(WriteRec {
                rid,
                old: std::ptr::null(),
                new: nv,
            });
            Ok(())
        } else {
            // Lost the insert race; nv was never published.
            // SAFETY: exclusively ours, unreachable from the store.
            drop(unsafe { Box::from_raw(nv) });
            Err(())
        }
    }

    /// Delete `rid`: supersede its visible version with an uncommitted
    /// **tombstone** (first-writer-wins on the superseded version's end
    /// word, exactly like an update). Deleting an absent record — null
    /// resolution or a visible tombstone — installs nothing but records the
    /// observed absence like an absent read, so serializable validation
    /// still catches a concurrent insert of the key.
    fn install_delete(
        &self,
        rid: RecordId,
        me: &HkTxn,
        reads: &mut Vec<ReadRec>,
        w: &mut Vec<WriteRec>,
    ) -> Result<(), ()> {
        let old = if let Some(prev) = w.iter().rev().find(|r| r.rid == rid) {
            prev.new
        } else if let Some(r) = reads.iter().rev().find(|r| r.rid == rid) {
            r.version
        } else {
            match self.resolve(rid, me.begin_ts, Some(me))? {
                Some(v) => v,
                None => std::ptr::null(),
            }
        };
        // SAFETY: store-lifetime under our epoch pin.
        if old.is_null() || unsafe { &*old }.is_tombstone() {
            reads.push(ReadRec { rid, version: old });
            return Ok(());
        }
        // SAFETY: non-null resolve result, live under our epoch pin.
        let old_ref = unsafe { &*old };
        if old_ref
            .end
            .compare_exchange(END_INF, txn_word(me), Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return Err(()); // write-write conflict: first writer wins
        }
        let nv = Box::into_raw(Box::new(HkVersion::uncommitted_tombstone(me)));
        self.store.push(rid, nv);
        w.push(WriteRec { rid, old, new: nv });
        Ok(())
    }

    /// Sampled post-commit chain pruning of this transaction's write set.
    /// The 1-in-4 sample is drawn from a per-worker xorshift stream, not a
    /// commit counter: a deterministic period can resonate with a periodic
    /// workload's record-to-commit pattern and starve some records of
    /// probes entirely (the same hazard BOHM's CC probe counter documents).
    fn maybe_prune(&self, w: &mut HkWorker, guard: &epoch::Guard) {
        if !self.gc {
            return;
        }
        w.prune_rng ^= w.prune_rng << 13;
        w.prune_rng ^= w.prune_rng >> 7;
        w.prune_rng ^= w.prune_rng << 17;
        if w.prune_rng & 0x3 != 0 {
            return;
        }
        let watermark = self.slots.watermark();
        if watermark == u64::MAX {
            return; // nothing registered (diagnostic-only contexts)
        }
        let mut freed = 0usize;
        for wr in &w.writes {
            freed += self.store.prune(wr.rid, watermark, guard);
        }
        // Reads too: a key that is never written again (e.g. deleted and
        // retired from the hot set) would otherwise keep its dead suffix
        // forever; this way any later probe of it reclaims the chain.
        for r in &w.reads {
            freed += self.store.prune(r.rid, watermark, guard);
        }
        if freed > 0 {
            // RELAXED: monotonic statistics counter.
            self.pruned.fetch_add(freed as u64, Ordering::Relaxed);
        }
    }

    /// Validation + dependency wait + post-processing. Returns commit/abort.
    fn finish(&self, me: &HkTxn, w: &mut HkWorker, user_abort: bool) -> bool {
        if user_abort {
            self.abort_txn(me, w);
            return false;
        }
        me.set_ending();
        // SeqCst: the RMW is a two-way fence ordering the ENDING store
        // before the draw (see `state::ENDING`).
        let end_ts = self.counter.fetch_add(1, Ordering::SeqCst);
        me.prepare(end_ts);
        let mut ok = true;
        if self.isolation == IsolationLevel::Serializable {
            // Re-resolve every read as of the end timestamp; the version
            // observed must still be the visible one (anti-dependency
            // check). Records we ourselves updated are governed by the
            // write-lock CAS instead.
            for r in &w.reads {
                if w.writes.iter().any(|wr| wr.rid == r.rid) {
                    continue;
                }
                match self.resolve(r.rid, end_ts, Some(me)) {
                    Ok(Some(vnow)) if std::ptr::eq(vnow, r.version) => {}
                    // An absent observation re-validates as still-absent
                    // (a concurrent insert of the key would resolve to a
                    // version and fail us here — the "phantom" case).
                    Ok(None) if r.version.is_null() => {}
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
        }
        if ok {
            ok = me.wait_for_dependencies();
        }
        if ok {
            me.resolve(true);
            // Post-processing: swap txn markers for real timestamps.
            // Inserts have no superseded version (`old` is null).
            for wr in &w.writes {
                // SAFETY: store-lifetime versions; we own these markers.
                unsafe {
                    (*wr.new).begin.store(end_ts, Ordering::Release);
                    if !wr.old.is_null() {
                        (*wr.old).end.store(end_ts, Ordering::Release);
                    }
                }
            }
            true
        } else {
            self.abort_txn(me, w);
            false
        }
    }

    fn abort_txn(&self, me: &HkTxn, w: &mut HkWorker) {
        me.resolve(false);
        for wr in &w.writes {
            // SAFETY: store-lifetime versions. An aborted insert leaves its
            // version as permanent garbage with no predecessor to restore.
            unsafe {
                (*wr.new).mark_aborted();
                if !wr.old.is_null() {
                    (*wr.old).end.store(END_INF, Ordering::Release);
                }
            }
        }
    }
}

struct HkAccess<'a> {
    eng: &'a Hekaton,
    txn: &'a Txn,
    me: &'a HkTxn,
    reads: &'a mut Vec<ReadRec>,
    writes: &'a mut Vec<WriteRec>,
}

impl Access for HkAccess<'_> {
    fn read(&mut self, idx: usize, out: &mut dyn FnMut(&[u8])) -> Result<(), AbortReason> {
        if !self.read_maybe(idx, out)? {
            panic!("read of unknown record {}", self.txn.reads[idx]);
        }
        Ok(())
    }

    fn read_maybe(&mut self, idx: usize, out: &mut dyn FnMut(&[u8])) -> Result<bool, AbortReason> {
        let rid = self.txn.reads[idx];
        match self.eng.resolve(rid, self.me.begin_ts, Some(self.me)) {
            Ok(Some(v)) => {
                self.reads.push(ReadRec { rid, version: v });
                // SAFETY: alive under our epoch pin; payload immutable.
                let vr = unsafe { &*v };
                if vr.is_tombstone() {
                    // A visible tombstone is committed absence; it is still
                    // validated by pointer identity like any read.
                    return Ok(false);
                }
                out(vr.data());
                Ok(true)
            }
            Ok(None) => {
                // Record the absence so serializable validation re-checks
                // it at the end timestamp.
                self.reads.push(ReadRec {
                    rid,
                    version: std::ptr::null(),
                });
                Ok(false)
            }
            Err(()) => Err(AbortReason::Conflict),
        }
    }

    fn write(&mut self, idx: usize, data: &[u8]) -> Result<(), AbortReason> {
        let rid = self.txn.writes[idx];
        self.eng
            .install_write(rid, data, self.me, self.reads, self.writes)
            .map_err(|()| AbortReason::Conflict)
    }

    fn delete(&mut self, idx: usize) -> Result<(), AbortReason> {
        let rid = self.txn.writes[idx];
        self.eng
            .install_delete(rid, self.me, self.reads, self.writes)
            .map_err(|()| AbortReason::Conflict)
    }

    fn index_scan(
        &mut self,
        idx: usize,
        out: &mut dyn FnMut(u64, &[u8]),
    ) -> Result<u64, AbortReason> {
        // The scanned key's posting list resolves at the begin timestamp
        // and is recorded by version pointer — the **posting-list version**
        // — and every member row is resolved at the same snapshot and
        // recorded too. Under serializable isolation, `finish` re-resolves
        // each recorded read at the end timestamp, so a maintenance commit
        // (NewOrder/Delivery rewriting the list) between begin and end
        // swaps the visible list version and fails validation — the
        // index-key phantom case. Under SI the scan is a consistent
        // snapshot: the list version at begin_ts names exactly the members
        // that exist at begin_ts (list and rows are maintained in one
        // transaction), so resolving each member at begin_ts is coherent.
        let s = self.txn.index_scans[idx];
        let list_rid = self.txn.reads[s.list];
        let lv = match self.eng.resolve(list_rid, self.me.begin_ts, Some(self.me)) {
            Ok(v) => v,
            Err(()) => return Err(AbortReason::Conflict),
        };
        self.reads.push(ReadRec {
            rid: list_rid,
            version: lv.unwrap_or(std::ptr::null()),
        });
        let Some(lv) = lv else { return Ok(0) };
        // SAFETY: alive under our epoch pin; payload immutable.
        let lvr = unsafe { &*lv };
        if lvr.is_tombstone() {
            return Ok(0);
        }
        let mut n = 0;
        for row in bohm_common::index::posting_rows(lvr.data()) {
            let rid = RecordId {
                table: s.table,
                row,
            };
            match self.eng.resolve(rid, self.me.begin_ts, Some(self.me)) {
                Ok(Some(v)) => {
                    self.reads.push(ReadRec { rid, version: v });
                    // SAFETY: alive under our epoch pin; payload immutable.
                    let vr = unsafe { &*v };
                    if !vr.is_tombstone() {
                        out(row, vr.data());
                        n += 1;
                    }
                }
                // Listed-but-absent member: contract violation tolerance —
                // record the absence so validation still covers the slot.
                Ok(None) => self.reads.push(ReadRec {
                    rid,
                    version: std::ptr::null(),
                }),
                Err(()) => return Err(AbortReason::Conflict),
            }
        }
        Ok(n)
    }

    fn scan(&mut self, idx: usize, out: &mut dyn FnMut(u64, &[u8])) -> Result<u64, AbortReason> {
        // Every slot of the range is resolved at the begin timestamp and
        // recorded — present versions by pointer, absences as null ReadRecs
        // — which generalizes the absent-read commit validation to a range
        // re-scan: under serializable isolation, `finish` re-resolves each
        // recorded slot at the end timestamp, so an insert into or delete
        // from the range committed between begin and end fails validation
        // (the phantom case). Under SI the scan is still a consistent
        // snapshot of the range (no validation, by SI semantics).
        let s = self.txn.scans[idx];
        assert!(
            s.hi as usize <= self.eng.store.rows(s.table.0),
            "scan range {s:?} beyond table capacity {}",
            self.eng.store.rows(s.table.0)
        );
        let mut n = 0;
        for row in s.rows() {
            let rid = RecordId {
                table: s.table,
                row,
            };
            match self.eng.resolve(rid, self.me.begin_ts, Some(self.me)) {
                Ok(Some(v)) => {
                    self.reads.push(ReadRec { rid, version: v });
                    // SAFETY: alive under our epoch pin; payload immutable.
                    let vr = unsafe { &*v };
                    if !vr.is_tombstone() {
                        out(row, vr.data());
                        n += 1;
                    }
                }
                Ok(None) => self.reads.push(ReadRec {
                    rid,
                    version: std::ptr::null(),
                }),
                Err(()) => return Err(AbortReason::Conflict),
            }
        }
        Ok(n)
    }

    fn write_len(&mut self, idx: usize) -> usize {
        self.eng.store.record_size(self.txn.writes[idx])
    }
}

/// Exponential back-off between retries of cc-aborted transactions.
#[inline]
fn backoff(attempt: u64) {
    let spins = 1u64 << attempt.min(10);
    for _ in 0..spins {
        std::hint::spin_loop();
    }
    if attempt > 10 {
        std::thread::yield_now();
    }
}

impl Engine for Hekaton {
    type Worker = HkWorker;

    fn name(&self) -> &'static str {
        match self.isolation {
            IsolationLevel::Serializable => "Hekaton",
            IsolationLevel::SnapshotIsolation => "SI",
        }
    }

    fn make_worker(&self) -> HkWorker {
        if self.gc {
            self.ensure_sweeper();
        }
        HkWorker {
            reads: Vec::with_capacity(32),
            writes: Vec::with_capacity(16),
            scratch: bohm_common::ExecScratch::new(),
            slot: self.slots.acquire(),
            slots: Arc::clone(&self.slots),
            // RELAXED: any racy snapshot works — it only seeds the
            // worker's prune-sampling RNG.
            prune_rng: 0x9E37_79B9_7F4A_7C15 ^ (self.slots.next.load(Ordering::Relaxed) as u64),
        }
    }

    fn execute(&self, txn: &Txn, w: &mut HkWorker) -> ExecOutcome {
        let mut attempts = 0u64;
        loop {
            w.reads.clear();
            w.writes.clear();
            let guard = epoch::pin();
            // Publish a *lower bound* in the active registry BEFORE drawing
            // the begin timestamp, then refine it. Ordering matters: a
            // draw-then-publish window would let a pruner scan the registry
            // between the two, miss this transaction, compute a watermark
            // above our timestamp, and free a version we still need. With
            // the bound published first (all SeqCst), any scan that misses
            // it is ordered before our draw — and then every end timestamp
            // the pruner can observe is below ours, so nothing it frees is
            // visible to us.
            self.slots.active[w.slot].store(self.counter.load(Ordering::SeqCst), Ordering::SeqCst);
            let begin_ts = self.counter.fetch_add(1, Ordering::SeqCst);
            self.slots.active[w.slot].store(begin_ts, Ordering::SeqCst);
            let me_ptr = Box::into_raw(Box::new(HkTxn::new(begin_ts)));
            // SAFETY: freed via epoch deferral below.
            let me = unsafe { &*me_ptr };

            txn.think();
            let mut scratch = std::mem::take(&mut w.scratch);
            let mut reads = std::mem::take(&mut w.reads);
            let mut writes = std::mem::take(&mut w.writes);
            let result = bohm_common::execute_procedure(
                &txn.proc,
                &txn.reads,
                &txn.writes,
                &txn.scans,
                &mut HkAccess {
                    eng: self,
                    txn,
                    me,
                    reads: &mut reads,
                    writes: &mut writes,
                },
                &mut scratch,
            );
            w.scratch = scratch;
            w.reads = reads;
            w.writes = writes;

            let decision = match result {
                Ok(fp) => {
                    if self.finish(me, w, false) {
                        // Reclaim dead versions behind this commit's writes
                        // (sampled; the registry still holds our begin_ts,
                        // bounding the watermark from above).
                        self.maybe_prune(w, &guard);
                        Some(ExecOutcome {
                            committed: true,
                            fingerprint: fp,
                            cc_retries: attempts,
                        })
                    } else {
                        None // cc abort → retry
                    }
                }
                Err(AbortReason::User) => {
                    self.finish(me, w, true);
                    Some(ExecOutcome {
                        committed: false,
                        fingerprint: 0,
                        cc_retries: attempts,
                    })
                }
                Err(AbortReason::Conflict) => {
                    self.abort_txn(me, w);
                    None
                }
                Err(e) => unreachable!("{e:?}"),
            };

            // SAFETY: all version words referencing `me` were replaced by
            // post-processing; in-flight readers hold epoch guards.
            unsafe { guard.defer_unchecked(move || drop(Box::from_raw(me_ptr))) };
            self.slots.active[w.slot].store(u64::MAX, Ordering::Release);
            drop(guard);

            match decision {
                Some(out) => return out,
                None => {
                    attempts += 1;
                    backoff(attempts);
                }
            }
        }
    }

    fn read_u64(&self, rid: RecordId) -> Option<u64> {
        Engine::read_record(self, rid).map(|d| bohm_common::value::get_u64(&d, 0))
    }

    fn read_record(&self, rid: RecordId) -> Option<bohm_common::Value> {
        if (rid.row as usize) >= self.store.rows(rid.table.0) {
            return None;
        }
        let _guard = epoch::pin();
        match self.resolve(rid, END_INF, None) {
            Ok(Some(v)) => {
                // SAFETY: alive under the pin (pruner defers frees).
                let vr = unsafe { &*v };
                if vr.is_tombstone() {
                    return None; // committed absence
                }
                Some(vr.data().into())
            }
            _ => None,
        }
    }

    fn snapshot_records(&self, f: &mut dyn FnMut(RecordId, &[u8])) {
        // Quiescent by the trait contract, so resolving each row at the
        // infinite horizon yields exactly the committed state (the same
        // walk `read_record` does, over the whole dense keyspace).
        let _guard = epoch::pin();
        for table in 0..self.store.table_count() as u32 {
            for row in 0..self.store.rows(table) as u64 {
                let rid = RecordId::new(table, row);
                if let Ok(Some(v)) = self.resolve(rid, END_INF, None) {
                    // SAFETY: alive under the pin (pruner defers frees).
                    let vr = unsafe { &*v };
                    if !vr.is_tombstone() {
                        f(rid, vr.data());
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bohm_common::Procedure;
    use std::sync::Arc;

    fn store(rows: u64) -> HekatonStore {
        let s = HekatonStore::new(&[(rows, 8)]);
        s.seed_u64(0, |r| r);
        s
    }

    fn rmw(k: u64, delta: u64) -> Txn {
        let rid = RecordId::new(0, k);
        Txn::new(vec![rid], vec![rid], Procedure::ReadModifyWrite { delta })
    }

    #[test]
    fn rmw_commits_and_bumps_counter_twice() {
        let e = Hekaton::serializable(store(8));
        let c0 = e.counter_value();
        let mut w = e.make_worker();
        let out = e.execute(&rmw(3, 10), &mut w);
        assert!(out.committed);
        assert_eq!(e.read_u64(RecordId::new(0, 3)), Some(13));
        assert!(
            e.counter_value() >= c0 + 2,
            "begin + commit must both hit the global counter"
        );
    }

    #[test]
    fn versions_accumulate_without_gc() {
        // The paper-faithful "no incremental GC" configuration: chains grow
        // one version per update, forever — the leak the chain pruner
        // exists to fix (see the churn tests below).
        let e = Hekaton::serializable(store(2)).without_gc();
        let mut w = e.make_worker();
        for _ in 0..10 {
            assert!(e.execute(&rmw(0, 1), &mut w).committed);
        }
        assert_eq!(e.read_u64(RecordId::new(0, 0)), Some(10));
        assert_eq!(e.store().chain_depth(RecordId::new(0, 0)), 11);
        assert_eq!(e.pruned_versions(), 0);
    }

    #[test]
    fn update_churn_keeps_chains_bounded_with_pruner() {
        let e = Hekaton::serializable(store(2));
        let mut w = e.make_worker();
        let iters = bohm_common::stress_iters(2_000);
        for _ in 0..iters {
            assert!(e.execute(&rmw(0, 1), &mut w).committed);
        }
        assert_eq!(e.read_u64(RecordId::new(0, 0)), Some(iters));
        let depth = e.store().chain_depth(RecordId::new(0, 0));
        assert!(
            depth < 64,
            "pruner must bound the chain; depth {depth} after {iters} updates"
        );
        assert!(e.pruned_versions() > 0, "pruner must actually reclaim");
    }

    #[test]
    fn insert_delete_churn_keeps_chains_bounded() {
        use bohm_common::Procedure::{BlindWrite, GuardedDelete};
        // The acceptance-criterion test: sustained insert→delete→re-insert
        // cycles over a tiny keyset must not grow version chains without
        // bound — committed-dead versions (including consumed tombstones)
        // are reclaimed as the watermark passes them.
        let s = HekatonStore::new(&[(1, 8), (4, 8)]);
        s.seed_u64(0, |_| 1); // guard row for GuardedDelete
        let e = Hekaton::serializable(s);
        let mut w = e.make_worker();
        let guard = RecordId::new(0, 0);
        let iters = bohm_common::stress_iters(2_000);
        for i in 0..iters {
            let k = RecordId::new(1, i % 4);
            let ins = Txn::new(vec![], vec![k], BlindWrite { value: i });
            assert!(e.execute(&ins, &mut w).committed);
            let del = Txn::new(vec![guard], vec![k], GuardedDelete { min: 0 });
            assert!(e.execute(&del, &mut w).committed);
        }
        for row in 0..4 {
            let rid = RecordId::new(1, row);
            assert_eq!(e.read_u64(rid), None, "deleted key reads absent");
            let depth = e.store().chain_depth(rid);
            assert!(
                depth < 64,
                "chain of row {row} unbounded: depth {depth} after {iters} cycles"
            );
        }
        assert!(
            e.pruned_versions() > iters / 4,
            "churn must reclaim aggressively, pruned only {}",
            e.pruned_versions()
        );
    }

    #[test]
    fn reads_reclaim_chains_of_keys_no_longer_written() {
        // A key that stops being written must still be reclaimable: pruning
        // rides on *reads* too, so probe-only traffic shrinks the chain.
        let e = Hekaton::serializable(store(2));
        let mut w = e.make_worker();
        for _ in 0..30 {
            assert!(e.execute(&rmw(0, 1), &mut w).committed);
        }
        let hot = RecordId::new(0, 0);
        let probe = Txn::new(vec![hot], vec![], Procedure::ProbeAll);
        for _ in 0..64 {
            assert!(e.execute(&probe, &mut w).committed);
        }
        let depth = e.store().chain_depth(hot);
        assert!(
            depth <= 2,
            "read-driven pruning must shrink the chain: {depth}"
        );
        assert_eq!(e.read_u64(hot), Some(30));
    }

    #[test]
    fn scan_observes_membership_and_revalidates_the_range() {
        use bohm_common::{range_audit_fingerprint, ScanRange, SCAN_POISON_GAP};
        let s = HekatonStore::new(&[(5, 8)]);
        s.seed_rows_u64(0, 2, |r| 10 + r); // rows 0,1 live; 2..5 absent
        let e = Hekaton::serializable(s);
        let mut w = e.make_worker();
        let audit = || {
            Txn::with_scans(
                vec![],
                vec![],
                vec![ScanRange::new(0, 0, 5)],
                Procedure::RangeAudit { expect_base: 10 },
            )
        };
        assert_eq!(
            e.execute(&audit(), &mut w).fingerprint,
            range_audit_fingerprint(2, 0)
        );
        let ins = Txn::new(
            vec![],
            vec![RecordId::new(0, 2)],
            Procedure::InsertKeyed { base: 10 },
        );
        assert!(e.execute(&ins, &mut w).committed);
        assert_eq!(
            e.execute(&audit(), &mut w).fingerprint,
            range_audit_fingerprint(3, 0)
        );
        let del = Txn::new(
            vec![RecordId::new(0, 0)],
            vec![RecordId::new(0, 1)],
            Procedure::GuardedDelete { min: 0 },
        );
        assert!(e.execute(&del, &mut w).committed);
        assert_eq!(e.execute(&audit(), &mut w).fingerprint, SCAN_POISON_GAP);
    }

    #[test]
    fn full_table_delete_churn_returns_memory_to_baseline() {
        use bohm_common::Procedure::{BlindWrite, GuardedDelete};
        // The former head-tombstone leak: a fully-deleted, never-reinserted
        // key kept one committed tombstone at its chain head forever. With
        // head reclamation, a sweep returns every churned chain to the
        // empty (null-head) baseline.
        let s = HekatonStore::new(&[(1, 8), (8, 8)]);
        s.seed_u64(0, |_| 1); // guard row
        let e = Hekaton::serializable(s);
        let mut w = e.make_worker();
        let guard = RecordId::new(0, 0);
        for row in 0..8 {
            let k = RecordId::new(1, row);
            let ins = Txn::new(vec![], vec![k], BlindWrite { value: row });
            assert!(e.execute(&ins, &mut w).committed);
            let del = Txn::new(vec![guard], vec![k], GuardedDelete { min: 0 });
            assert!(e.execute(&del, &mut w).committed);
        }
        // Worker idle ⇒ watermark is ∞ ⇒ everything dead is reclaimable.
        e.sweep_now();
        for row in 0..8 {
            let rid = RecordId::new(1, row);
            assert_eq!(e.read_u64(rid), None);
            assert_eq!(
                e.store().chain_depth(rid),
                0,
                "row {row}: tombstone head must be reclaimed, not leaked"
            );
        }
        // Reclaimed keys are fully reusable (insert goes through the
        // head-CAS path against the null head).
        let k = RecordId::new(1, 3);
        let ins = Txn::new(vec![], vec![k], BlindWrite { value: 42 });
        assert!(e.execute(&ins, &mut w).committed);
        assert_eq!(e.read_u64(k), Some(42));
        assert_eq!(e.store().chain_depth(k), 1);
    }

    #[test]
    fn write_once_then_idle_key_is_pruned_by_background_sweep() {
        // Commit-riding pruning never fires on a key nobody touches again;
        // the background sweeper must shrink its dead suffix anyway.
        let e = Hekaton::serializable(store(2));
        let mut w = e.make_worker();
        for _ in 0..10 {
            assert!(e.execute(&rmw(0, 1), &mut w).committed);
        }
        let hot = RecordId::new(0, 0);
        // No further transaction touches the key: only the sweeper can act.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let depth = e.store().chain_depth(hot);
            if depth <= 1 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "background sweep never pruned the idle key (depth {depth})"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert_eq!(e.read_u64(hot), Some(10), "live head survives the sweep");
        assert!(e.pruned_versions() > 0);
    }

    #[test]
    fn idle_key_suffix_persists_without_background_sweep() {
        // The ablation: with the sweeper off, an untouched key's dead
        // suffix stays — the exact leak the sweep exists to fix.
        let e = Hekaton::serializable(store(2)).without_background_sweep();
        let mut w = e.make_worker();
        for _ in 0..10 {
            assert!(e.execute(&rmw(0, 1), &mut w).committed);
        }
        // Commit-riding pruning may have trimmed during the updates, but
        // whatever suffix the last commit left can only be removed by a
        // toucher or the (disabled) sweeper.
        let depth0 = e.store().chain_depth(RecordId::new(0, 0));
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(e.store().chain_depth(RecordId::new(0, 0)), depth0);
    }

    #[test]
    fn delete_makes_record_absent_and_reinsertable() {
        let s = HekatonStore::new(&[(2, 8)]);
        s.seed_u64(0, |r| r + 5);
        let e = Hekaton::serializable(s);
        let mut w = e.make_worker();
        let guard = RecordId::new(0, 0);
        let victim = RecordId::new(0, 1);
        let del = Txn::new(
            vec![guard],
            vec![victim],
            Procedure::GuardedDelete { min: 0 },
        );
        let out = e.execute(&del, &mut w);
        assert!(out.committed);
        assert_eq!(e.read_u64(victim), None, "tombstone reads as absence");
        // Re-insert over the tombstone (update path, not head-CAS).
        let ins = Txn::new(vec![], vec![victim], Procedure::BlindWrite { value: 42 });
        assert!(e.execute(&ins, &mut w).committed);
        assert_eq!(e.read_u64(victim), Some(42));
        // And it RMWs like any record afterwards.
        assert!(e.execute(&rmw(1, 1), &mut w).committed);
        assert_eq!(e.read_u64(victim), Some(43));
    }

    #[test]
    fn aborted_delete_restores_the_superseded_version() {
        // A user abort *after* the procedure level would be a contract
        // violation; the engine-level rollback is exercised through the
        // first-writer-wins conflict path instead: concurrent deleters and
        // re-inserters of one hot key must leave a consistent final state
        // (every conflict loser's tombstone is unwound via abort_txn).
        let s = HekatonStore::new(&[(2, 8)]);
        s.seed_u64(0, |_| 7);
        let e = Arc::new(Hekaton::serializable(s));
        let hot = RecordId::new(0, 1);
        let guard = RecordId::new(0, 0);
        let mut handles = Vec::new();
        for t in 0..6u64 {
            let e = Arc::clone(&e);
            handles.push(std::thread::spawn(move || {
                let mut w = e.make_worker();
                for i in 0..500u64 {
                    if (t + i) % 2 == 0 {
                        let del =
                            Txn::new(vec![guard], vec![hot], Procedure::GuardedDelete { min: 0 });
                        assert!(e.execute(&del, &mut w).committed);
                    } else {
                        let ins =
                            Txn::new(vec![], vec![hot], Procedure::BlindWrite { value: 100 + t });
                        assert!(e.execute(&ins, &mut w).committed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        if let Some(v) = e.read_u64(hot) {
            assert!((100..106).contains(&v), "value from some insert: {v}");
        }
        // Guard row untouched throughout.
        assert_eq!(e.read_u64(guard), Some(7));
    }

    #[test]
    fn user_aborted_delete_leaves_row_readable() {
        let s = HekatonStore::new(&[(2, 8)]);
        s.seed_u64(0, |_| 0); // guard value 0 < min ⇒ user abort
        let e = Hekaton::serializable(s);
        let mut w = e.make_worker();
        let victim = RecordId::new(0, 1);
        let del = Txn::new(
            vec![RecordId::new(0, 0)],
            vec![victim],
            Procedure::GuardedDelete { min: 1 },
        );
        let out = e.execute(&del, &mut w);
        assert!(!out.committed);
        assert_eq!(out.cc_retries, 0, "logic aborts are not retried");
        assert_eq!(e.read_u64(victim), Some(0), "row survives the abort");
    }

    #[test]
    fn blind_delete_of_absent_key_is_a_validated_noop() {
        let s = HekatonStore::new(&[(1, 8), (2, 8)]); // table 1 unseeded
        s.seed_u64(0, |_| 9);
        let e = Hekaton::serializable(s);
        let mut w = e.make_worker();
        let absent = RecordId::new(1, 0);
        let del = Txn::new(
            vec![RecordId::new(0, 0)],
            vec![absent],
            Procedure::GuardedDelete { min: 0 },
        );
        let out = e.execute(&del, &mut w);
        assert!(out.committed, "deleting nothing commits");
        assert_eq!(e.read_u64(absent), None);
        assert_eq!(e.store().chain_depth(absent), 0, "no version installed");
    }

    #[test]
    fn concurrent_hot_key_increments_are_exact() {
        for iso in [
            IsolationLevel::Serializable,
            IsolationLevel::SnapshotIsolation,
        ] {
            let e = Arc::new(Hekaton::new(store(2), iso));
            let mut handles = Vec::new();
            for _ in 0..8 {
                let e = Arc::clone(&e);
                handles.push(std::thread::spawn(move || {
                    let mut w = e.make_worker();
                    let mut retries = 0;
                    for _ in 0..2_000 {
                        let out = e.execute(&rmw(1, 1), &mut w);
                        assert!(out.committed);
                        retries += out.cc_retries;
                    }
                    retries
                }));
            }
            let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(e.read_u64(RecordId::new(0, 1)), Some(1 + 16_000));
            // Observing a ww conflict needs two txns genuinely overlapping;
            // on a single-CPU host short release-mode txns may never be
            // preempted mid-flight, so only assert conflict liveness where
            // real parallelism exists (exactness above is always checked).
            if std::thread::available_parallelism().is_ok_and(|n| n.get() > 1) {
                assert!(total > 0, "hot-key RMWs must suffer ww-conflict aborts");
            }
        }
    }

    #[test]
    fn user_abort_rolls_back_installed_versions() {
        use bohm_common::SmallBankProc;
        let s = HekatonStore::new(&[(2, 8)]);
        s.seed_u64(0, |_| 5);
        let e = Hekaton::serializable(s);
        let mut w = e.make_worker();
        let sav = RecordId::new(0, 0);
        let t = Txn::new(
            vec![sav],
            vec![sav],
            Procedure::SmallBank(SmallBankProc::TransactSaving { v: -10 }),
        );
        let out = e.execute(&t, &mut w);
        assert!(!out.committed);
        assert_eq!(out.cc_retries, 0, "logic aborts are not retried");
        assert_eq!(e.read_u64(sav), Some(5));
        // The aborted version stays as garbage in the chain (no GC) but a
        // subsequent update must succeed over it.
        assert!(e.execute(&rmw(0, 1), &mut w).committed);
        assert_eq!(e.read_u64(sav), Some(6));
    }

    /// The write-skew anomaly (§2, Fig. 1): two transactions with
    /// overlapping read sets and disjoint write sets drawn from the shared
    /// reads. Serializable Hekaton must forbid the non-serializable
    /// outcome; SI must (eventually) exhibit it.
    fn zero_store(rows: u64) -> HekatonStore {
        let s = HekatonStore::new(&[(rows, 8)]);
        s.seed_u64(0, |_| 0);
        s
    }

    fn write_skew_trial(e: &Arc<Hekaton>) -> (u64, u64) {
        // x = r0, y = r1, both start 0 (zero-seeded store). Two concurrent
        // RMWs with overlapping read sets {x, y} and disjoint single-record
        // write sets — the §2 anomaly shape.
        let x = RecordId::new(0, 0);
        let y = RecordId::new(0, 1);
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let mk = |writes: RecordId| {
            Txn::new(
                vec![x, y],
                vec![writes],
                // RMW with delta 1 on the written record; reads of both.
                Procedure::ReadModifyWrite { delta: 1 },
            )
        };
        let h1 = {
            let e = Arc::clone(e);
            let b = Arc::clone(&barrier);
            let t = mk(y);
            std::thread::spawn(move || {
                let mut w = e.make_worker();
                // Warm up this thread's epoch participant before the
                // barrier: first-pin registration takes a global lock,
                // which would otherwise serialize the intended race.
                drop(epoch::pin());
                b.wait();
                e.execute(&t, &mut w)
            })
        };
        let h2 = {
            let e = Arc::clone(e);
            let b = Arc::clone(&barrier);
            let t = mk(x);
            std::thread::spawn(move || {
                let mut w = e.make_worker();
                // Warm up this thread's epoch participant before the
                // barrier: first-pin registration takes a global lock,
                // which would otherwise serialize the intended race.
                drop(epoch::pin());
                b.wait();
                e.execute(&t, &mut w)
            })
        };
        h1.join().unwrap();
        h2.join().unwrap();
        (e.read_u64(x).unwrap(), e.read_u64(y).unwrap())
    }

    #[test]
    fn serializable_mode_forbids_write_skew() {
        // Under serializability the two RMWs must appear in *some* serial
        // order; since each reads both records, the later one reads the
        // earlier one's write. With our fingerprinting we can't observe the
        // reads directly, but both-written (1,1) from a state where each
        // read (0,0) is fine for this procedure (increments commute).
        // The discriminating check is done through raw read observation:
        // re-run many trials and assert the *reads* were never both-stale.
        // Simpler equivalent: use validation retry counters — under
        // serializable isolation, concurrent overlapping read sets with
        // disjoint writes must produce validation aborts once the two
        // streams actually overlap. On a single-CPU host a one-shot race
        // almost never overlaps (each txn runs within one scheduler
        // quantum), so each thread runs a sustained stream of conflicting
        // RMWs: timer preemption then lands mid-transaction and the other
        // stream's commit invalidates the interrupted read set.
        use bohm_sync::atomic::{AtomicBool, Ordering};
        // Sweeper off: this test isolates commit validation, and on a
        // single-CPU host the background thread would eat into the tight
        // scheduling budget the racing streams depend on.
        let e = Arc::new(Hekaton::serializable(zero_store(2)).without_background_sweep());
        let x = RecordId::new(0, 0);
        let y = RecordId::new(0, 1);
        let stop = Arc::new(AtomicBool::new(false));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let mut streams = Vec::new();
        for wrid in [x, y] {
            let e = Arc::clone(&e);
            let stop = Arc::clone(&stop);
            let t = Txn::new(
                vec![x, y],
                vec![wrid],
                Procedure::ReadModifyWrite { delta: 1 },
            );
            streams.push(std::thread::spawn(move || {
                let mut w = e.make_worker();
                let mut retries = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    retries += e.execute(&t, &mut w).cc_retries;
                    if retries > 0 || std::time::Instant::now() >= deadline {
                        stop.store(true, Ordering::Relaxed);
                    }
                }
                retries
            }));
        }
        let saw_retry = streams.into_iter().map(|h| h.join().unwrap()).sum::<u64>() > 0;
        // On a single-CPU host the overlap depends entirely on timer
        // preemption landing mid-transaction; under full-suite load it can
        // miss for the whole deadline, so (like OCC's hot-key test) the
        // liveness assertion requires real parallelism.
        if std::thread::available_parallelism().is_ok_and(|n| n.get() > 1) {
            assert!(
                saw_retry,
                "serializable validation never fired on racing overlapped txns"
            );
        }
    }

    #[test]
    fn snapshot_isolation_skips_read_validation() {
        // Under SI the same race commits both transactions on first attempt
        // (no read validation, disjoint write sets → no ww conflict), so
        // the counter stays at the 4-bump minimum in every trial.
        for _ in 0..20 {
            let e = Arc::new(Hekaton::snapshot_isolation(zero_store(2)));
            let (x, y) = write_skew_trial(&e);
            assert_eq!((x, y), (1, 1), "SI admits the write-skew outcome");
            assert!(
                e.counter_value() <= 5,
                "SI must not validation-abort disjoint writers"
            );
        }
    }

    #[test]
    fn insert_into_empty_slot_becomes_visible() {
        let s = HekatonStore::new(&[(4, 8)]);
        s.seed_rows_u64(0, 2, |r| r); // rows 2..4 start absent
        let e = Hekaton::serializable(s);
        let mut w = e.make_worker();
        let fresh = RecordId::new(0, 3);
        assert_eq!(e.read_u64(fresh), None, "unseeded slot starts absent");
        let t = Txn::new(vec![], vec![fresh], Procedure::BlindWrite { value: 9 });
        assert!(e.execute(&t, &mut w).committed);
        assert_eq!(e.read_u64(fresh), Some(9));
        // And it behaves like any record afterwards.
        assert!(e.execute(&rmw(3, 1), &mut w).committed);
        assert_eq!(e.read_u64(fresh), Some(10));
    }

    #[test]
    fn absent_read_fingerprint_then_insert_then_present() {
        use bohm_common::{TpcCProc, ABSENT_FINGERPRINT};
        let s = HekatonStore::new(&[(1, 8), (2, 8)]);
        s.seed_u64(0, |_| 5);
        // Table 1 left entirely unseeded (absent).
        let e = Hekaton::serializable(s);
        let mut w = e.make_worker();
        let order = RecordId::new(1, 0);
        let status = Txn::new(
            vec![RecordId::new(0, 0), order],
            vec![],
            Procedure::TpcC(TpcCProc::OrderStatus),
        );
        let absent_fp = 5u64.wrapping_mul(31).wrapping_add(ABSENT_FINGERPRINT);
        let out = e.execute(&status, &mut w);
        assert!(out.committed);
        assert_eq!(out.fingerprint, absent_fp);
        let ins = Txn::new(vec![], vec![order], Procedure::BlindWrite { value: 1 });
        assert!(e.execute(&ins, &mut w).committed);
        assert_ne!(e.execute(&status, &mut w).fingerprint, absent_fp);
    }

    #[test]
    fn aborted_insert_garbage_reads_as_absent_and_stays_insertable() {
        // Plant aborted-insert garbage in an otherwise-empty chain (what a
        // cc-aborted insert attempt leaves behind, since these baselines
        // never collect garbage), then check the chain still reads as
        // stably absent — not a conflict livelock — and accepts an insert.
        let s = HekatonStore::new(&[(1, 8)]);
        let fresh = RecordId::new(0, 0);
        let zombie = crate::txn::HkTxn::new(1);
        let garbage = Box::into_raw(Box::new(HkVersion::uncommitted(
            &zombie,
            bohm_common::value::of_u64(99, 8),
        )));
        s.push(fresh, garbage);
        // SAFETY: single-threaded test; `garbage` is the live chain head.
        unsafe { &*garbage }.mark_aborted();
        let e = Hekaton::serializable(s);
        let mut w = e.make_worker();
        assert_eq!(e.read_u64(fresh), None, "garbage-only chain is absent");
        let ins = Txn::new(vec![], vec![fresh], Procedure::BlindWrite { value: 3 });
        let out = e.execute(&ins, &mut w);
        assert!(out.committed);
        assert_eq!(
            out.cc_retries, 0,
            "garbage must not masquerade as a conflict"
        );
        assert_eq!(e.read_u64(fresh), Some(3));
        // The insert stacks on the garbage; the sampled pruner may already
        // have unlinked the aborted version beneath the new head.
        let depth = e.store().chain_depth(fresh);
        assert!((1..=2).contains(&depth), "unexpected chain depth {depth}");
    }

    #[test]
    fn concurrent_same_key_inserts_first_writer_wins_then_update() {
        let s = HekatonStore::new(&[(1, 8)]); // wholly absent table
        let e = Arc::new(Hekaton::serializable(s));
        let fresh = RecordId::new(0, 0);
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let e = Arc::clone(&e);
            handles.push(std::thread::spawn(move || {
                let mut w = e.make_worker();
                let txn = Txn::new(
                    vec![],
                    vec![fresh],
                    Procedure::BlindWrite { value: 100 + t },
                );
                assert!(e.execute(&txn, &mut w).committed, "upserts must settle");
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let v = e.read_u64(fresh).unwrap();
        assert!((100..108).contains(&v), "final value from some writer: {v}");
    }

    #[test]
    fn disjoint_inserts_never_conflict() {
        let s = HekatonStore::new(&[(2, 8)]); // wholly absent table
        let e = Hekaton::snapshot_isolation(s);
        let mut w = e.make_worker();
        let i0 = Txn::new(
            vec![],
            vec![RecordId::new(0, 0)],
            Procedure::BlindWrite { value: 1 },
        );
        let i1 = Txn::new(
            vec![],
            vec![RecordId::new(0, 1)],
            Procedure::BlindWrite { value: 2 },
        );
        let o0 = e.execute(&i0, &mut w);
        let o1 = e.execute(&i1, &mut w);
        assert!(o0.committed && o1.committed);
        assert_eq!(o0.cc_retries + o1.cc_retries, 0, "disjoint inserts");
    }

    #[test]
    fn engine_names_reflect_isolation() {
        let e1 = Hekaton::serializable(store(1));
        let e2 = Hekaton::snapshot_isolation(store(1));
        assert_eq!(e1.name(), "Hekaton");
        assert_eq!(e2.name(), "SI");
    }
}
