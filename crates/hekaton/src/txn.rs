//! Transaction objects and the commit-dependency machinery.

use bohm_sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, Ordering};
use bohm_sync::Mutex;

/// Transaction lifecycle states (Larson et al. §2, plus `ENDING`).
pub mod state {
    pub const ACTIVE: u32 = 0;
    /// End timestamp acquired, validating / waiting on dependencies.
    pub const PREPARING: u32 = 1;
    pub const COMMITTED: u32 = 2;
    pub const ABORTED: u32 = 3;
    /// About to draw an end timestamp (stored **before** the global-counter
    /// fetch-and-add). Closes a visibility race: once a reader has drawn a
    /// begin timestamp T, any transaction it still observes as `ACTIVE` is
    /// guaranteed to end with `e > T` (the counter RMWs are fences ordering
    /// this store before the draw); a transaction seen `ENDING` has an
    /// end timestamp of unknown order, so readers briefly wait for
    /// `PREPARING`. Without this state, an SI reader could skip a version
    /// whose writer had already drawn `e < T` but not yet published
    /// `PREPARING` — an inconsistent snapshot (caught by our audit tests).
    pub const ENDING: u32 = 4;
}

/// A running transaction. Heap-allocated; version words hold tagged
/// pointers to it while it is in flight, and it is retired through
/// `crossbeam-epoch` after post-processing.
pub struct HkTxn {
    pub begin_ts: u64,
    /// Valid once state ≥ PREPARING.
    pub end_ts: AtomicU64,
    state: AtomicU32,
    /// Outstanding commit dependencies (producers this txn speculatively
    /// read from that have not resolved yet).
    deps: AtomicI64,
    /// Set when any producer this txn depends on aborted (cascade).
    dep_aborted: AtomicBool,
    /// Transactions that speculatively read *our* uncommitted output and
    /// wait for us. Pointers stay valid because a dependent spins inside
    /// its own commit until we resolve it (see `resolve_dependents`).
    dependents: Mutex<Vec<usize>>,
}

impl HkTxn {
    pub fn new(begin_ts: u64) -> Self {
        Self {
            begin_ts,
            end_ts: AtomicU64::new(0),
            state: AtomicU32::new(state::ACTIVE),
            deps: AtomicI64::new(0),
            dep_aborted: AtomicBool::new(false),
            dependents: Mutex::new(Vec::new()),
        }
    }

    #[inline]
    pub fn state(&self) -> u32 {
        self.state.load(Ordering::Acquire)
    }

    #[inline]
    pub fn end_ts(&self) -> u64 {
        self.end_ts.load(Ordering::Acquire)
    }

    /// Announce the intent to acquire an end timestamp
    /// (`ACTIVE → ENDING`). Must be called before the counter draw; uses a
    /// sequentially-consistent store so it is ordered before the draw even
    /// on weakly-ordered hardware.
    pub fn set_ending(&self) {
        debug_assert_eq!(self.state(), state::ACTIVE);
        self.state.store(state::ENDING, Ordering::SeqCst);
    }

    /// Move `ENDING → PREPARING` with the acquired end timestamp.
    pub fn prepare(&self, end_ts: u64) {
        self.end_ts.store(end_ts, Ordering::Release);
        // Under the dependents lock so registration linearizes with state.
        let _g = self.dependents.lock();
        self.state.store(state::PREPARING, Ordering::Release);
    }

    /// Register `reader` as depending on this (Preparing) transaction.
    ///
    /// Returns `Ok(true)` if the dependency was registered (reader must wait
    /// for it), `Ok(false)` if this transaction already committed (no
    /// dependency needed), or `Err(())` if it aborted (the reader consumed
    /// poisoned data and must abort too).
    // The unit error is deliberate: "producer aborted" carries no payload
    // and the whole call graph is crate-internal.
    #[allow(clippy::result_unit_err)]
    pub fn register_dependent(&self, reader: &HkTxn) -> Result<bool, ()> {
        let mut deps = self.dependents.lock();
        match self.state.load(Ordering::Acquire) {
            state::PREPARING | state::ACTIVE | state::ENDING => {
                reader.deps.fetch_add(1, Ordering::AcqRel);
                deps.push(reader as *const HkTxn as usize);
                Ok(true)
            }
            state::COMMITTED => Ok(false),
            state::ABORTED => Err(()),
            _ => unreachable!(),
        }
    }

    /// Finalize state and wake dependents. `committed` selects the cascade
    /// behaviour: commit decrements dependents' counters, abort poisons
    /// them.
    pub fn resolve(&self, committed: bool) {
        let mut deps = self.dependents.lock();
        self.state.store(
            if committed {
                state::COMMITTED
            } else {
                state::ABORTED
            },
            Ordering::Release,
        );
        for &d in deps.iter() {
            // SAFETY: a registered dependent spins inside its own commit
            // (`wait_for_dependencies`) until its counter reaches zero, so
            // the pointed-to transaction is alive for the whole drain.
            let dep = unsafe { &*(d as *const HkTxn) };
            if !committed {
                dep.dep_aborted.store(true, Ordering::Release);
            }
            dep.deps.fetch_sub(1, Ordering::AcqRel);
        }
        deps.clear();
    }

    /// Spin until every producer this transaction speculatively read from
    /// has resolved. Returns `false` if any of them aborted (cascade).
    pub fn wait_for_dependencies(&self) -> bool {
        let backoff = crossbeam_utils::Backoff::new();
        while self.deps.load(Ordering::Acquire) > 0 {
            backoff.snooze();
        }
        !self.dep_aborted.load(Ordering::Acquire)
    }

    #[cfg(test)]
    pub fn outstanding_deps(&self) -> i64 {
        self.deps.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_publishes_end_ts() {
        let t = HkTxn::new(5);
        assert_eq!(t.state(), state::ACTIVE);
        t.prepare(9);
        assert_eq!(t.state(), state::PREPARING);
        assert_eq!(t.end_ts(), 9);
    }

    #[test]
    fn commit_resolution_releases_dependents() {
        let producer = HkTxn::new(1);
        let reader = HkTxn::new(2);
        producer.prepare(3);
        assert_eq!(producer.register_dependent(&reader), Ok(true));
        assert_eq!(reader.outstanding_deps(), 1);
        producer.resolve(true);
        assert_eq!(reader.outstanding_deps(), 0);
        assert!(reader.wait_for_dependencies());
    }

    #[test]
    fn abort_resolution_poisons_dependents() {
        let producer = HkTxn::new(1);
        let reader = HkTxn::new(2);
        producer.prepare(3);
        producer.register_dependent(&reader).unwrap();
        producer.resolve(false);
        assert!(!reader.wait_for_dependencies(), "cascaded abort expected");
    }

    #[test]
    fn registering_on_committed_producer_is_a_noop() {
        let producer = HkTxn::new(1);
        let reader = HkTxn::new(2);
        producer.prepare(3);
        producer.resolve(true);
        assert_eq!(producer.register_dependent(&reader), Ok(false));
        assert_eq!(reader.outstanding_deps(), 0);
    }

    #[test]
    fn registering_on_aborted_producer_fails() {
        let producer = HkTxn::new(1);
        let reader = HkTxn::new(2);
        producer.prepare(3);
        producer.resolve(false);
        assert_eq!(producer.register_dependent(&reader), Err(()));
    }

    #[test]
    fn waiter_blocks_until_resolution() {
        use std::sync::Arc;
        let producer = Arc::new(HkTxn::new(1));
        let reader = Arc::new(HkTxn::new(2));
        producer.prepare(3);
        producer.register_dependent(&reader).unwrap();
        let r2 = Arc::clone(&reader);
        let h = std::thread::spawn(move || r2.wait_for_dependencies());
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(!h.is_finished(), "waiter must block while dep outstanding");
        producer.resolve(true);
        assert!(h.join().unwrap());
    }
}
