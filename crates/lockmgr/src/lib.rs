//! Lock-manager substrate for the 2PL baseline.
//!
//! The paper's locking implementation has three properties (§4):
//!
//! 1. **Fine-grained latching** — no centralized latch. Here every record
//!    gets its own reader/writer lock *word* in a flat pre-sized array (the
//!    limit case of per-bucket latching: bucket count = record count, with
//!    zero hash collisions because slots come from the store's dense
//!    record→slot map).
//! 2. **Deadlock freedom** — [`LockTable::acquire`] sorts requests into the
//!    global record order before acquiring, so no deadlock detection logic
//!    exists anywhere.
//! 3. **No lock-table-entry allocations** — all state is allocated once at
//!    startup; acquiring and releasing locks never allocates (the request
//!    buffer is a caller-owned "workhorse" vector reused across
//!    transactions).

pub mod rwlock;
pub mod table;

pub use rwlock::RwSpin;
pub use table::{LockMode, LockRequest, LockTable};
