//! The lock table: one [`RwSpin`] per record slot, acquired in sorted order.

use crate::rwlock::RwSpin;

/// Requested access mode for one slot.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum LockMode {
    Shared,
    Exclusive,
}

/// One lock request: a dense record slot plus a mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LockRequest {
    pub slot: u64,
    pub mode: LockMode,
}

/// Flat array of per-record locks.
///
/// Slots come from the store's dense `RecordId → slot` map
/// (`SingleVersionStore::slot`), so there are no hash collisions and no
/// false sharing of lock identity between distinct records.
pub struct LockTable {
    slots: Box<[RwSpin]>,
}

impl LockTable {
    pub fn new(total_slots: u64) -> Self {
        let mut v = Vec::with_capacity(total_slots as usize);
        v.resize_with(total_slots as usize, RwSpin::new);
        Self {
            slots: v.into_boxed_slice(),
        }
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    #[inline]
    fn lock_of(&self, slot: u64) -> &RwSpin {
        &self.slots[slot as usize]
    }

    /// Normalize a request buffer in place: sort by slot (the deadlock-free
    /// global order, paper §4 property b) and merge duplicates, upgrading to
    /// `Exclusive` when a slot is requested in both modes (an RMW appears in
    /// both the read and the write set).
    pub fn normalize(reqs: &mut Vec<LockRequest>) {
        // Exclusive sorts after Shared, so after a stable slot-major sort
        // the *last* entry per slot carries the strongest mode.
        reqs.sort_unstable_by(|a, b| a.slot.cmp(&b.slot).then(a.mode.cmp(&b.mode)));
        let mut w = 0;
        for i in 0..reqs.len() {
            if w > 0 && reqs[w - 1].slot == reqs[i].slot {
                reqs[w - 1].mode = reqs[i].mode; // stronger or equal
            } else {
                reqs[w] = reqs[i];
                w += 1;
            }
        }
        reqs.truncate(w);
    }

    /// Acquire every lock in `reqs` (which **must** be normalized); blocks
    /// (spinning) until all are held. Returns a guard that releases them on
    /// drop. Growing-phase-then-shrinking-phase discipline (strict 2PL) is
    /// the caller's obligation: do all data access while the guard lives.
    pub fn acquire<'t>(&'t self, reqs: &[LockRequest]) -> LockGuard<'t> {
        debug_assert!(
            reqs.windows(2).all(|w| w[0].slot < w[1].slot),
            "requests must be normalized (sorted, deduplicated)"
        );
        for r in reqs {
            match r.mode {
                LockMode::Shared => self.lock_of(r.slot).lock_shared(),
                LockMode::Exclusive => self.lock_of(r.slot).lock_exclusive(),
            }
        }
        LockGuard {
            table: self,
            held: reqs.to_vec(),
        }
    }

    /// Non-allocating variant for the engine hot path: acquires and returns
    /// nothing; the caller must call [`release`](Self::release) with the
    /// same normalized request slice.
    pub fn acquire_raw(&self, reqs: &[LockRequest]) {
        debug_assert!(reqs.windows(2).all(|w| w[0].slot < w[1].slot));
        for r in reqs {
            match r.mode {
                LockMode::Shared => self.lock_of(r.slot).lock_shared(),
                LockMode::Exclusive => self.lock_of(r.slot).lock_exclusive(),
            }
        }
    }

    /// Release locks previously taken with [`acquire_raw`](Self::acquire_raw).
    pub fn release(&self, reqs: &[LockRequest]) {
        // Reverse order is customary (not required for correctness).
        for r in reqs.iter().rev() {
            match r.mode {
                LockMode::Shared => self.lock_of(r.slot).unlock_shared(),
                LockMode::Exclusive => self.lock_of(r.slot).unlock_exclusive(),
            }
        }
    }
}

/// RAII guard for [`LockTable::acquire`].
pub struct LockGuard<'t> {
    table: &'t LockTable,
    held: Vec<LockRequest>,
}

impl Drop for LockGuard<'_> {
    fn drop(&mut self) {
        self.table.release(&self.held);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(slot: u64, mode: LockMode) -> LockRequest {
        LockRequest { slot, mode }
    }

    #[test]
    fn normalize_sorts_and_dedups() {
        let mut v = vec![
            req(5, LockMode::Shared),
            req(1, LockMode::Shared),
            req(5, LockMode::Exclusive),
            req(1, LockMode::Shared),
            req(3, LockMode::Exclusive),
        ];
        LockTable::normalize(&mut v);
        assert_eq!(
            v,
            vec![
                req(1, LockMode::Shared),
                req(3, LockMode::Exclusive),
                req(5, LockMode::Exclusive), // upgraded
            ]
        );
    }

    #[test]
    fn normalize_keeps_exclusive_when_listed_first() {
        let mut v = vec![req(2, LockMode::Exclusive), req(2, LockMode::Shared)];
        LockTable::normalize(&mut v);
        assert_eq!(v, vec![req(2, LockMode::Exclusive)]);
    }

    #[test]
    fn guard_releases_on_drop() {
        let t = LockTable::new(4);
        let reqs = vec![req(0, LockMode::Exclusive), req(2, LockMode::Shared)];
        {
            let _g = t.acquire(&reqs);
            assert!(!t.lock_of(0).try_lock_shared());
            assert!(t.lock_of(2).try_lock_shared());
            t.lock_of(2).unlock_shared();
        }
        assert!(t.lock_of(0).try_lock_exclusive());
        t.lock_of(0).unlock_exclusive();
        assert!(t.lock_of(2).try_lock_exclusive());
        t.lock_of(2).unlock_exclusive();
    }

    #[test]
    fn raw_acquire_release_roundtrip() {
        let t = LockTable::new(2);
        let reqs = vec![req(0, LockMode::Shared), req(1, LockMode::Exclusive)];
        t.acquire_raw(&reqs);
        assert!(t.lock_of(0).try_lock_shared());
        t.lock_of(0).unlock_shared();
        assert!(!t.lock_of(1).try_lock_shared());
        t.release(&reqs);
        assert!(t.lock_of(1).try_lock_exclusive());
        t.lock_of(1).unlock_exclusive();
    }

    /// The signature concurrency test: many threads transferring between
    /// random pairs of slots; sorted acquisition must neither deadlock nor
    /// corrupt the invariant sum.
    #[test]
    fn sorted_acquisition_preserves_invariants_without_deadlock() {
        use std::sync::Arc;
        let n = 16u64;
        let t = Arc::new(LockTable::new(n));
        let balances = Arc::new(
            (0..n)
                .map(|_| bohm_sync::atomic::AtomicU64::new(100))
                .collect::<Vec<_>>(),
        );
        let mut handles = Vec::new();
        for tid in 0..8u64 {
            let t = Arc::clone(&t);
            let b = Arc::clone(&balances);
            handles.push(std::thread::spawn(move || {
                let mut x = tid.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                let mut reqs = Vec::new();
                for _ in 0..20_000 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let a = x % n;
                    let c = (x >> 8) % n;
                    if a == c {
                        continue;
                    }
                    reqs.clear();
                    reqs.push(req(a, LockMode::Exclusive));
                    reqs.push(req(c, LockMode::Exclusive));
                    LockTable::normalize(&mut reqs);
                    t.acquire_raw(&reqs);
                    // Move 1 unit a → c under the locks (Relaxed is fine:
                    // the locks provide the ordering).
                    use bohm_sync::atomic::Ordering::Relaxed;
                    let va = b[a as usize].load(Relaxed);
                    b[a as usize].store(va.wrapping_sub(1), Relaxed);
                    let vc = b[c as usize].load(Relaxed);
                    b[c as usize].store(vc.wrapping_add(1), Relaxed);
                    t.release(&reqs);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Balances may individually wrap below zero; the *wrapping* sum is
        // conserved exactly iff no increment was lost or duplicated.
        let sum = balances.iter().fold(0u64, |acc, a| {
            acc.wrapping_add(a.load(bohm_sync::atomic::Ordering::SeqCst))
        });
        assert_eq!(sum, 100 * n);
    }
}
