//! A word-sized reader/writer spin lock.
//!
//! One `AtomicU32` per record: bit 31 is the writer flag, bits 0..31 count
//! readers. Writers wait for readers to drain; acquisition spins with
//! `crossbeam_utils::Backoff` (spin → yield), which is the non-blocking
//! thread model the paper's baselines use ("instead of yielding control to
//! another thread, the thread temporarily stops working", §4 — at lock
//! granularity our waits are short because transactions are short and
//! deadlock-free ordering bounds hold times).

// HOT-PATH: taken per record access under 2PL; no clocks, no syscalls,
// no I/O (enforced by the lint).

use bohm_sync::atomic::{AtomicU32, Ordering};
use crossbeam_utils::Backoff;

const WRITER: u32 = 1 << 31;

/// Reader/writer spin lock in a single word.
#[derive(Default)]
pub struct RwSpin {
    state: AtomicU32,
}

impl RwSpin {
    pub const fn new() -> Self {
        Self {
            state: AtomicU32::new(0),
        }
    }

    /// Try to add a reader; fails if a writer holds the lock.
    #[inline]
    pub fn try_lock_shared(&self) -> bool {
        // RELAXED: optimistic probe only — the Acquire CAS below is the
        // edge that actually takes the reader slot.
        let s = self.state.load(Ordering::Relaxed);
        if s & WRITER != 0 {
            return false;
        }
        self.state
            // RELAXED: failure-order only; failure reads nothing protected.
            .compare_exchange_weak(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Spin until a reader slot is acquired.
    #[inline]
    pub fn lock_shared(&self) {
        let backoff = Backoff::new();
        while !self.try_lock_shared() {
            backoff.snooze();
        }
    }

    /// Try to take the writer flag; fails if any reader or writer is present.
    #[inline]
    pub fn try_lock_exclusive(&self) -> bool {
        self.state
            // RELAXED: failure-order only; the caller just retries.
            .compare_exchange(0, WRITER, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Spin until exclusive ownership is acquired.
    #[inline]
    pub fn lock_exclusive(&self) {
        let backoff = Backoff::new();
        while !self.try_lock_exclusive() {
            backoff.snooze();
        }
    }

    /// Release a reader slot.
    #[inline]
    pub fn unlock_shared(&self) {
        let prev = self.state.fetch_sub(1, Ordering::Release);
        debug_assert!(prev & !WRITER > 0, "unlock_shared without a reader");
    }

    /// Release the writer flag.
    #[inline]
    pub fn unlock_exclusive(&self) {
        let prev = self.state.swap(0, Ordering::Release);
        debug_assert_eq!(prev, WRITER, "unlock_exclusive without the writer");
    }

    /// Diagnostic: current raw state (racy).
    pub fn raw(&self) -> u32 {
        // RELAXED: diagnostic snapshot; declared racy.
        self.state.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn readers_share() {
        let l = RwSpin::new();
        assert!(l.try_lock_shared());
        assert!(l.try_lock_shared());
        assert!(!l.try_lock_exclusive());
        l.unlock_shared();
        assert!(!l.try_lock_exclusive());
        l.unlock_shared();
        assert!(l.try_lock_exclusive());
    }

    #[test]
    fn writer_excludes_everyone() {
        let l = RwSpin::new();
        assert!(l.try_lock_exclusive());
        assert!(!l.try_lock_shared());
        assert!(!l.try_lock_exclusive());
        l.unlock_exclusive();
        assert!(l.try_lock_shared());
    }

    #[test]
    fn exclusive_protects_a_counter() {
        use bohm_sync::atomic::{AtomicU64, Ordering as O};
        let l = Arc::new(RwSpin::new());
        // Relaxed load+store is a data race *unless* the lock serializes the
        // critical sections — losing increments would expose a broken lock.
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let l = Arc::clone(&l);
            let c = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    l.lock_exclusive();
                    let v = c.load(O::Relaxed);
                    c.store(v + 1, O::Relaxed);
                    l.unlock_exclusive();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(O::SeqCst), 80_000);
    }

    #[test]
    fn readers_drain_before_writer_enters() {
        use bohm_sync::atomic::{AtomicBool, Ordering as O};
        let l = Arc::new(RwSpin::new());
        let writer_in = Arc::new(AtomicBool::new(false));
        l.lock_shared();
        let (l2, w2) = (Arc::clone(&l), Arc::clone(&writer_in));
        let h = std::thread::spawn(move || {
            l2.lock_exclusive();
            w2.store(true, O::SeqCst);
            l2.unlock_exclusive();
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(
            !writer_in.load(O::SeqCst),
            "writer entered with reader held"
        );
        l.unlock_shared();
        h.join().unwrap();
        assert!(writer_in.load(O::SeqCst));
    }
}
