//! The workspace's synchronization facade.
//!
//! Every sync-critical crate in this workspace imports its atomics, mutexes,
//! condvars and spin/yield hints from here instead of `std::sync` /
//! `parking_lot` (an invariant enforced by `cargo run -p analysis --
//! --check`). The facade has two personalities:
//!
//! * **Normal builds** — pure re-exports. [`atomic`] is
//!   `std::sync::atomic`, [`Mutex`]/[`Condvar`]/[`RwLock`] are the
//!   `parking_lot` types the workspace already used, [`hint::spin_loop`] is
//!   `std::hint::spin_loop`. Zero code, zero cost: the facade compiles away
//!   completely (the perf gate holds `fig_tpcc` to this).
//!
//! * **`--cfg bohm_modelcheck` builds** (`RUSTFLAGS="--cfg bohm_modelcheck"`)
//!   — every load, store, RMW, lock, unlock, wait and notify becomes a
//!   *scheduling point* of a deterministic controlled scheduler, and the
//!   runtime carries a vector-clock happens-before tracker that flags data
//!   races on [`cell::UnsafeCell`] payloads whose accesses are not ordered
//!   by the synchronization actually present in the execution. See
//!   [`model`] for the harness API (seeded PCT-style and random scheduling,
//!   exhaustive small-bound DFS, replayable seeds).
//!
//! Outside an active [`model::run`] execution the instrumented types fall
//! back to the real primitives, so a `--cfg bohm_modelcheck` build still
//! runs the ordinary test suites correctly (just slower).
//!
//! # Facade rules (the short version)
//!
//! * Import `bohm_sync::atomic::*`, never `std::sync::atomic` — the lint
//!   gate fails the tree otherwise (shims and this crate excepted).
//! * `Ordering::Relaxed` on a sync-critical atomic needs a `// RELAXED:`
//!   justification comment; stronger orderings don't.
//! * Structures that want model-checkable payload-race detection store
//!   shared plain data in [`cell::UnsafeCell`] and access it through
//!   [`cell::UnsafeCell::with`] / [`cell::UnsafeCell::with_mut`].

#[cfg(not(bohm_modelcheck))]
mod real;
#[cfg(not(bohm_modelcheck))]
pub use real::*;

#[cfg(bohm_modelcheck)]
mod model_impl;
#[cfg(bohm_modelcheck)]
pub use model_impl::*;

#[cfg(bohm_modelcheck)]
pub mod selftest;
