//! Detector self-test fixtures (`--cfg bohm_modelcheck` only).
//!
//! [`MiniRing`] is a miniature single-slot publication ring — the smallest
//! honest model of the window ring's publish/consume protocol — with a
//! deliberately breakable variant that demotes the consumer's flag load
//! from `Acquire` to `Relaxed`. Under the model checker the broken variant
//! MUST be reported as a data race (the payload read no longer
//! happens-after the payload write), and the correct variant must pass an
//! exhaustive sweep. `tests/modelcheck.rs` asserts both, plus that the
//! failing seed is stable and replayable.

use crate::atomic::{AtomicUsize, Ordering};
use crate::cell::UnsafeCell;

/// A one-slot seqlock-free publication ring: a writer stores the payload,
/// then raises a flag; readers poll the flag and read the payload.
pub struct MiniRing {
    flag: AtomicUsize,
    slot: UnsafeCell<u64>,
    /// `false` selects the broken variant: the reader's flag load is
    /// `Relaxed`, so observing the flag no longer orders the payload read
    /// after the payload write.
    acquire_loads: bool,
}

// SAFETY: the slot is written only before the Release flag store and read
// only after observing the flag — the publication protocol serializes
// access. The broken (`acquire_loads == false`) variant violates exactly
// this argument; it exists so the race detector can prove it notices.
unsafe impl Sync for MiniRing {}

impl MiniRing {
    /// Create a ring; `correct` selects Acquire (true) or Relaxed (false)
    /// consumer loads.
    pub fn new(correct: bool) -> Self {
        Self {
            flag: AtomicUsize::new(0),
            slot: UnsafeCell::new(0),
            acquire_loads: correct,
        }
    }

    /// Publish `v`: write the slot, then raise the flag (Release).
    pub fn publish(&self, v: u64) {
        // SAFETY: protocol above — the flag is still down, so no reader
        // touches the slot concurrently (in the correct variant).
        unsafe {
            self.slot.with_mut(|p| *p = v);
        }
        self.flag.store(1, Ordering::Release);
    }

    /// Consume: if the flag is up, read the slot.
    pub fn try_consume(&self) -> Option<u64> {
        let ord = if self.acquire_loads {
            Ordering::Acquire
        } else {
            // RELAXED: deliberately wrong — the seeded bug drops the
            // happens-before edge to the writer's slot store so the model
            // checker has a real race to find.
            Ordering::Relaxed
        };
        if self.flag.load(ord) == 1 {
            // SAFETY: flag == 1 means the writer finished the slot write
            // and released it — sound only with the Acquire load above.
            Some(unsafe { self.slot.with(|p| *p) })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::MiniRing;
    use crate::model;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    fn publish_consume(correct: bool) {
        let ring = Arc::new(MiniRing::new(correct));
        let w = {
            let ring = Arc::clone(&ring);
            crate::thread::spawn(move || ring.publish(7))
        };
        let r = {
            let ring = Arc::clone(&ring);
            crate::thread::spawn(move || {
                if let Some(v) = ring.try_consume() {
                    assert_eq!(v, 7);
                }
            })
        };
        w.join().unwrap();
        r.join().unwrap();
    }

    /// Find the first seed whose schedule exposes the seeded bug.
    fn first_failing_seed() -> u64 {
        for seed in 1..=256 {
            let failed = catch_unwind(AssertUnwindSafe(|| {
                model::run(seed, || publish_consume(false))
            }))
            .is_err();
            if failed {
                return seed;
            }
        }
        panic!("no seed in 1..=256 exposed the dropped-Acquire race");
    }

    #[test]
    fn correct_ring_survives_exploration() {
        model::explore(
            model::Options {
                seeds: 64,
                ..Default::default()
            },
            || publish_consume(true),
        );
    }

    #[test]
    fn correct_ring_survives_exhaustive() {
        let execs = model::exhaustive(
            model::Options {
                seeds: 10_000,
                ..Default::default()
            },
            || publish_consume(true),
        );
        assert!(execs > 1, "DFS should enumerate more than one schedule");
    }

    #[test]
    fn broken_ring_is_detected_with_stable_seed() {
        let seed = first_failing_seed();
        for _ in 0..2 {
            let err = catch_unwind(AssertUnwindSafe(|| {
                model::run(seed, || publish_consume(false));
            }))
            .expect_err("the same seed must fail deterministically");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(
                msg.contains("data race detected"),
                "expected a race report, got: {msg}"
            );
            assert!(
                msg.contains(&format!("seed {seed}")),
                "report names the seed: {msg}"
            );
        }
    }

    #[test]
    fn broken_ring_is_detected_exhaustively() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            model::exhaustive(
                model::Options {
                    seeds: 10_000,
                    ..Default::default()
                },
                || publish_consume(false),
            );
        }))
        .expect_err("DFS must find the dropped-Acquire race");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("data race detected"), "got: {msg}");
    }

    #[test]
    fn same_seed_same_interleaving() {
        let seed = 42;
        let a = model::run(seed, || publish_consume(true));
        let b = model::run(seed, || publish_consume(true));
        assert_eq!(a, b, "identical seeds must replay identical schedules");
        let c = model::run(seed + 1, || publish_consume(true));
        // Not a hard guarantee for every pair of seeds, but if *this* pair
        // collides the fingerprint is almost certainly broken.
        assert!(
            a != c || a.steps == c.steps,
            "distinct seeds should normally schedule differently"
        );
    }
}
