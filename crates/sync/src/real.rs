//! Normal-build personality: nothing but re-exports.
//!
//! Every item here must stay API-compatible with the instrumented twins in
//! `model_impl` — code written against the facade compiles identically under
//! both personalities.

pub use parking_lot::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

/// `std::sync::atomic`, verbatim.
pub mod atomic {
    pub use std::sync::atomic::{
        fence, AtomicBool, AtomicI64, AtomicPtr, AtomicU32, AtomicU64, AtomicU8, AtomicUsize,
        Ordering,
    };
}

/// Spin hints (`std::hint`, verbatim).
pub mod hint {
    pub use std::hint::spin_loop;
}

/// Thread spawning and yielding (`std::thread`, verbatim).
pub mod thread {
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

/// Shared mutable payload cell.
///
/// In normal builds this is a transparent wrapper over
/// [`std::cell::UnsafeCell`]; under `--cfg bohm_modelcheck` the tracked
/// accessors feed the vector-clock race detector.
pub mod cell {
    /// Interior-mutable storage whose accesses the model checker audits.
    #[repr(transparent)]
    #[derive(Default)]
    pub struct UnsafeCell<T: ?Sized>(std::cell::UnsafeCell<T>);

    impl<T> UnsafeCell<T> {
        /// Wrap a value.
        pub const fn new(value: T) -> Self {
            Self(std::cell::UnsafeCell::new(value))
        }

        /// Unwrap the value.
        pub fn into_inner(self) -> T {
            self.0.into_inner()
        }
    }

    impl<T: ?Sized> UnsafeCell<T> {
        /// Raw pointer to the payload (untracked escape hatch — prefer
        /// [`with`](Self::with) / [`with_mut`](Self::with_mut), which the
        /// race detector sees).
        pub const fn get(&self) -> *mut T {
            self.0.get()
        }

        /// Run `f` on a shared-read pointer to the payload. Counts as a
        /// *read access* for race detection under `bohm_modelcheck`.
        ///
        /// # Safety
        ///
        /// Callers uphold the usual `UnsafeCell` aliasing contract: no
        /// concurrent mutable access for the duration of `f`.
        pub unsafe fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.0.get())
        }

        /// Run `f` on an exclusive pointer to the payload. Counts as a
        /// *write access* for race detection under `bohm_modelcheck`.
        ///
        /// # Safety
        ///
        /// Callers uphold the usual `UnsafeCell` aliasing contract: no
        /// concurrent access of any kind for the duration of `f`.
        pub unsafe fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }

        /// Exclusive access through an exclusive reference (always safe).
        pub fn get_mut(&mut self) -> &mut T {
            self.0.get_mut()
        }
    }
}

/// Model-check harness API (inert stub in normal builds).
///
/// The real implementation lives behind `--cfg bohm_modelcheck`; this stub
/// lets harness code compile (and run once, uncontrolled) in ordinary
/// builds so doc examples and shared helpers need no cfg of their own.
pub mod model {
    /// Summary of one controlled execution.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Execution {
        /// FNV fingerprint of every scheduling decision taken.
        pub fingerprint: u64,
        /// Scheduling points executed.
        pub steps: u64,
    }

    /// Exploration options. See the `bohm_modelcheck` docs for semantics;
    /// the stub ignores everything but runs the closure once.
    #[derive(Debug, Clone, Copy)]
    pub struct Options {
        /// Number of seeds to explore.
        pub seeds: u64,
        /// First seed.
        pub start_seed: u64,
        /// Per-execution scheduling-point budget.
        pub max_steps: u64,
        /// Use random scheduling instead of PCT priorities.
        pub random: bool,
    }

    impl Default for Options {
        fn default() -> Self {
            Self {
                seeds: 64,
                start_seed: 1,
                max_steps: 50_000,
                random: false,
            }
        }
    }

    /// Run `f` once (uncontrolled in normal builds).
    pub fn run(_seed: u64, f: impl FnOnce()) -> Execution {
        f();
        Execution {
            fingerprint: 0,
            steps: 0,
        }
    }

    /// Run `f` once (uncontrolled in normal builds).
    pub fn explore(_opts: Options, f: impl Fn()) {
        f();
    }

    /// Run `f` once (uncontrolled in normal builds). Returns executions run.
    pub fn exhaustive(_opts: Options, f: impl Fn()) -> u64 {
        f();
        1
    }
}
