//! Model-aware thread spawning and joining.
//!
//! A thread spawned *from a model thread* becomes part of the controlled
//! execution: it is a real OS thread, but it parks immediately and runs
//! only when the scheduler hands it the token. Spawns from ordinary
//! threads pass straight through to `std::thread`.

use std::panic::AssertUnwindSafe;

use super::rt;

/// Join handle mirroring [`std::thread::JoinHandle`].
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<T>,
    tid: Option<usize>,
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish, returning its result. On a model
    /// thread this is a blocking scheduling point that joins the child's
    /// final vector clock (join is an acquire of everything the child did).
    pub fn join(self) -> std::thread::Result<T> {
        if let Some(t) = self.tid {
            rt::join_thread(t);
        }
        self.inner.join()
    }

    /// Whether the thread has finished.
    pub fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }
}

/// Spawn a thread; registered with the scheduler when the caller is a
/// model thread (see module docs).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    // yield_point validates (and clears, if stale) the thread-local
    // registration, so a Some() below is from the live execution.
    rt::yield_point();
    if let Some((_, me)) = rt::current() {
        let (gen, tid, parker) = rt::register_child(me);
        let inner = std::thread::spawn(move || {
            rt::child_start(gen, tid, &parker);
            let r = std::panic::catch_unwind(AssertUnwindSafe(f));
            match r {
                Ok(v) => {
                    rt::finish_thread(gen, tid, None);
                    v
                }
                Err(p) => {
                    rt::finish_thread(gen, tid, Some(rt::panic_msg(p.as_ref())));
                    std::panic::resume_unwind(p)
                }
            }
        });
        JoinHandle {
            inner,
            tid: Some(tid),
        }
    } else {
        JoinHandle {
            inner: std::thread::spawn(f),
            tid: None,
        }
    }
}

/// Yield: deprioritizes the calling model thread (PCT treats an explicit
/// yield as "someone else should run"), plain `yield_now` otherwise.
pub fn yield_now() {
    if rt::on_model_thread() {
        rt::deprioritize_current();
        rt::yield_point();
    } else {
        std::thread::yield_now();
    }
}
