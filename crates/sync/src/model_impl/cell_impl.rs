//! Tracked interior-mutability cell: the race detector's probe points.
//!
//! Accesses through [`UnsafeCell::with`] / [`UnsafeCell::with_mut`] are
//! recorded FastTrack-style (last write + current read set, with caller
//! source locations) and checked against the accessor's vector clock; a
//! conflicting pair with no happens-before path fails the execution with
//! both locations and the replay seed.

use std::panic::Location;
use std::sync::Mutex as StdMutex;

use super::rt;
use super::rt::CellMeta;

/// Interior-mutable storage whose accesses the model checker audits.
pub struct UnsafeCell<T: ?Sized> {
    meta: StdMutex<CellMeta>,
    v: std::cell::UnsafeCell<T>,
}

impl<T> UnsafeCell<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self {
            meta: StdMutex::new(CellMeta::new()),
            v: std::cell::UnsafeCell::new(value),
        }
    }

    /// Unwrap the value.
    pub fn into_inner(self) -> T {
        self.v.into_inner()
    }
}

impl<T: ?Sized> UnsafeCell<T> {
    /// Raw pointer to the payload (untracked escape hatch — prefer
    /// [`with`](Self::with) / [`with_mut`](Self::with_mut), which the race
    /// detector sees).
    pub const fn get(&self) -> *mut T {
        self.v.get()
    }

    /// Run `f` on a shared-read pointer to the payload; recorded as a
    /// *read access* for race detection.
    ///
    /// # Safety
    ///
    /// Callers uphold the usual `UnsafeCell` aliasing contract: no
    /// concurrent mutable access for the duration of `f`.
    #[track_caller]
    pub unsafe fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        rt::yield_point();
        rt::cell_access(&self.meta, false, Location::caller());
        f(self.v.get())
    }

    /// Run `f` on an exclusive pointer to the payload; recorded as a
    /// *write access* for race detection.
    ///
    /// # Safety
    ///
    /// Callers uphold the usual `UnsafeCell` aliasing contract: no
    /// concurrent access of any kind for the duration of `f`.
    #[track_caller]
    pub unsafe fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        rt::yield_point();
        rt::cell_access(&self.meta, true, Location::caller());
        f(self.v.get())
    }

    /// Exclusive access through an exclusive reference (always safe).
    pub fn get_mut(&mut self) -> &mut T {
        self.v.get_mut()
    }
}

impl<T: Default> Default for UnsafeCell<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}
