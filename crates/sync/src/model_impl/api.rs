//! The harness-facing model-check API (`bohm_sync::model`).
//!
//! * [`run`] — one controlled execution of a closure under a given seed.
//! * [`explore`] — a bounded sweep of seeds (PCT or random scheduling);
//!   `BOHM_MODEL_SEEDS` overrides the count, `BOHM_MODEL_SEED` pins a
//!   single seed for replaying a reported failure.
//! * [`exhaustive`] — systematic DFS over every scheduling decision, for
//!   small self-contained models; `BOHM_MODEL_EXECS` overrides the
//!   execution cap.
//!
//! Any failure (data race, deadlock, budget overrun, harness panic)
//! panics with the seed in the message and prints a
//! `BOHM_MODEL_SEED=<n>` replay hint on stderr.

use super::rt;
use super::rt::Mode;

/// Summary of one controlled execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Execution {
    /// FNV fingerprint of every scheduling decision taken. Two executions
    /// of the same harness with the same seed must produce the same
    /// fingerprint — that is the determinism contract.
    pub fingerprint: u64,
    /// Scheduling points executed.
    pub steps: u64,
}

/// Exploration options.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Seeds to explore ([`explore`]) or execution cap ([`exhaustive`]).
    pub seeds: u64,
    /// First seed for [`explore`].
    pub start_seed: u64,
    /// Per-execution scheduling-point budget (exceeding it fails the
    /// execution as a livelock).
    pub max_steps: u64,
    /// Use uniformly random scheduling instead of PCT priorities.
    pub random: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            seeds: 64,
            start_seed: 1,
            max_steps: 50_000,
            random: false,
        }
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Run `f` once under the controlled scheduler with `seed`.
pub fn run(seed: u64, f: impl FnOnce()) -> Execution {
    let out = rt::run_one(seed, Mode::Pct, Options::default().max_steps, Vec::new(), f);
    Execution {
        fingerprint: out.fingerprint,
        steps: out.steps,
    }
}

/// Run `f` under every seed in the configured range.
pub fn explore(opts: Options, f: impl Fn()) {
    let mode = if opts.random { Mode::Random } else { Mode::Pct };
    if let Some(seed) = env_u64("BOHM_MODEL_SEED") {
        rt::run_one(seed, mode, opts.max_steps, Vec::new(), &f);
        return;
    }
    let seeds = env_u64("BOHM_MODEL_SEEDS").unwrap_or(opts.seeds);
    for i in 0..seeds {
        rt::run_one(opts.start_seed + i, mode, opts.max_steps, Vec::new(), &f);
    }
}

/// Systematically enumerate scheduling decisions depth-first, re-running
/// `f` once per distinct schedule until the space is exhausted or the
/// execution cap (`opts.seeds`, or `BOHM_MODEL_EXECS`) is hit. Returns the
/// number of executions run.
///
/// Only suitable for *self-contained* models (no state shared across
/// executions, e.g. via the global epoch collector): DFS replays decision
/// prefixes, which requires each execution to be a pure function of its
/// schedule.
pub fn exhaustive(opts: Options, f: impl Fn()) -> u64 {
    let cap = env_u64("BOHM_MODEL_EXECS").unwrap_or(opts.seeds);
    let mut prefix: Vec<u8> = Vec::new();
    let mut execs = 0u64;
    loop {
        let out = rt::run_one(0, Mode::Dfs, opts.max_steps, prefix.clone(), &f);
        execs += 1;
        if execs >= cap {
            return execs;
        }
        // Advance to the next schedule: bump the deepest decision that
        // still has an unexplored branch, dropping everything below it.
        let mut choices = out.choices;
        loop {
            match choices.pop() {
                Some((n, c)) if c + 1 < n => {
                    choices.push((n, c + 1));
                    break;
                }
                Some(_) => continue,
                None => return execs,
            }
        }
        prefix = choices.iter().map(|&(_, c)| c).collect();
    }
}
