//! Instrumented `Mutex` / `Condvar` / `RwLock`, API-compatible with the
//! `parking_lot` surface the normal personality re-exports.
//!
//! On a model thread the lock state is *virtual*: acquisition, blocking and
//! hand-off are scheduler decisions, and lock/unlock carry acquire/release
//! vector-clock edges exactly like the real primitives would. Off a model
//! thread (or with no execution active) the types fall back to real
//! `std::sync` primitives so ordinary test suites keep working under the
//! `bohm_modelcheck` cfg.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, PoisonError, RwLock as StdRwLock};
use std::time::{Duration, Instant};

use super::rt;
use super::rt::LockMeta;

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Instrumented mutex (see module docs).
pub struct Mutex<T: ?Sized> {
    meta: StdMutex<LockMeta>,
    raw: StdMutex<()>,
    v: std::cell::UnsafeCell<T>,
}

// SAFETY: the payload is only reachable through a guard, and a guard exists
// only while either the real `raw` mutex or the virtual (scheduler-enforced,
// one-thread-runs-at-a-time) lock state grants exclusive access.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
// SAFETY: as above — `&Mutex<T>` only hands out the payload under exclusion.
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    raw: Option<std::sync::MutexGuard<'a, ()>>,
    model: bool,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            meta: StdMutex::new(LockMeta::new()),
            raw: StdMutex::new(()),
            v: std::cell::UnsafeCell::new(value),
        }
    }

    /// Consume the mutex, returning the payload.
    pub fn into_inner(self) -> T {
        self.v.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    fn key(&self) -> usize {
        std::ptr::from_ref(&self.meta) as usize
    }

    /// Acquire the lock, blocking (virtually, on a model thread) until free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if rt::on_model_thread() {
            rt::lock_acquire(&self.meta, self.key(), false);
            MutexGuard {
                lock: self,
                raw: None,
                model: true,
            }
        } else {
            MutexGuard {
                lock: self,
                raw: Some(self.raw.lock().unwrap_or_else(PoisonError::into_inner)),
                model: false,
            }
        }
    }

    /// Acquire the lock if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        if rt::on_model_thread() {
            rt::lock_try_acquire(&self.meta, false).then(|| MutexGuard {
                lock: self,
                raw: None,
                model: true,
            })
        } else {
            match self.raw.try_lock() {
                Ok(g) => Some(MutexGuard {
                    lock: self,
                    raw: Some(g),
                    model: false,
                }),
                Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                    lock: self,
                    raw: Some(p.into_inner()),
                    model: false,
                }),
                Err(std::sync::TryLockError::WouldBlock) => None,
            }
        }
    }

    /// Exclusive access through an exclusive reference (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.v.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: holding the guard means holding either the raw mutex or
        // the virtual lock; both grant exclusive payload access.
        unsafe { &*self.lock.v.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref` — the guard proves exclusive access.
        unsafe { &mut *self.lock.v.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.model {
            rt::lock_release(&self.lock.meta, self.lock.key(), false);
        }
        // A raw guard (fallback path) releases itself.
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of a timed wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Instrumented condition variable.
///
/// Under the model, timed waits never consult a clock: they are woken as
/// "timed out" only when the execution would otherwise be stuck, which is
/// exactly the set of schedules where a real timer could fire first.
#[derive(Default)]
pub struct Condvar {
    raw: StdCondvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self {
            raw: StdCondvar::new(),
        }
    }

    fn key(&self) -> usize {
        std::ptr::from_ref(&self.raw) as usize
    }

    /// Block until notified, releasing `guard`'s mutex while waiting.
    pub fn wait<T: ?Sized>(&self, guard: &mut MutexGuard<'_, T>) {
        if guard.model {
            rt::condvar_wait(&guard.lock.meta, guard.lock.key(), self.key(), false);
        } else {
            let g = guard.raw.take().expect("guard present outside wait");
            guard.raw = Some(self.raw.wait(g).unwrap_or_else(PoisonError::into_inner));
        }
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T: ?Sized>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        if guard.model {
            let timed_out = rt::condvar_wait(&guard.lock.meta, guard.lock.key(), self.key(), true);
            WaitTimeoutResult(timed_out)
        } else {
            let g = guard.raw.take().expect("guard present outside wait");
            let (g, res) = match self.raw.wait_timeout(g, timeout) {
                Ok(pair) => pair,
                Err(p) => p.into_inner(),
            };
            guard.raw = Some(g);
            WaitTimeoutResult(res.timed_out())
        }
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T: ?Sized>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        if guard.model {
            return self.wait_for(guard, Duration::ZERO);
        }
        let now = Instant::now();
        if now >= deadline {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, deadline - now)
    }

    /// Wake one waiter (a seeded scheduling decision under the model).
    pub fn notify_one(&self) {
        rt::condvar_notify(self.key(), false);
        self.raw.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        rt::condvar_notify(self.key(), true);
        self.raw.notify_all();
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// Instrumented reader-writer lock.
///
/// Model-mode readers share a single joined release clock, which can only
/// over-synchronize (suppress reports), never fabricate a race.
pub struct RwLock<T: ?Sized> {
    meta: StdMutex<LockMeta>,
    raw: StdRwLock<()>,
    v: std::cell::UnsafeCell<T>,
}

// SAFETY: payload access is gated by a guard; guards exist only under the
// real raw rwlock or the virtual reader/writer accounting.
unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
// SAFETY: shared (`read`) guards hand out `&T` only, exclusive (`write`)
// guards require the writer slot — standard RwLock reasoning.
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    raw: Option<std::sync::RwLockReadGuard<'a, ()>>,
    model: bool,
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    raw: Option<std::sync::RwLockWriteGuard<'a, ()>>,
    model: bool,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            meta: StdMutex::new(LockMeta::new()),
            raw: StdRwLock::new(()),
            v: std::cell::UnsafeCell::new(value),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized> RwLock<T> {
    fn key(&self) -> usize {
        std::ptr::from_ref(&self.meta) as usize
    }

    /// Acquire shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        if rt::on_model_thread() {
            rt::lock_acquire(&self.meta, self.key(), true);
            RwLockReadGuard {
                lock: self,
                raw: None,
                model: true,
            }
        } else {
            RwLockReadGuard {
                lock: self,
                raw: Some(self.raw.read().unwrap_or_else(PoisonError::into_inner)),
                model: false,
            }
        }
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        if rt::on_model_thread() {
            rt::lock_acquire(&self.meta, self.key(), false);
            RwLockWriteGuard {
                lock: self,
                raw: None,
                model: true,
            }
        } else {
            RwLockWriteGuard {
                lock: self,
                raw: Some(self.raw.write().unwrap_or_else(PoisonError::into_inner)),
                model: false,
            }
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: a read guard proves no writer exists (raw or virtual),
        // so shared payload access is sound.
        unsafe { &*self.lock.v.get() }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if self.model {
            rt::lock_release(&self.lock.meta, self.lock.key(), true);
        }
        let _ = self.raw.take();
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: a write guard proves exclusive access.
        unsafe { &*self.lock.v.get() }
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: a write guard proves exclusive access.
        unsafe { &mut *self.lock.v.get() }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if self.model {
            rt::lock_release(&self.lock.meta, self.lock.key(), false);
        }
        let _ = self.raw.take();
    }
}
