//! The controlled-scheduler runtime.
//!
//! One model execution at a time (serialized by `Rt::run_lock`). The
//! calling thread of [`run_one`] becomes model thread 0; facade
//! `thread::spawn` registers further threads. All model threads are real OS
//! threads, but exactly **one** holds the "token" at any instant: every
//! instrumented operation calls [`yield_point`], which consults the
//! scheduler and, if a different thread is chosen, unparks it and parks the
//! caller. The whole execution is therefore a deterministic function of the
//! seed (plus the program itself), and any failure prints a replayable seed.
//!
//! Happens-before is tracked with vector clocks: thread `t` ticks its own
//! component at every scheduling point; release edges (release stores,
//! mutex unlocks) publish the releaser's clock on the object; acquire edges
//! (acquire loads, mutex locks) join it. Data-race checks on
//! `cell::UnsafeCell` payloads compare access stamps against the accessor's
//! current clock.

use std::cell::Cell;
use std::panic::Location;
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, OnceLock, PoisonError};

/// FNV-1a basis / prime for the schedule fingerprint.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Mean scheduling points between PCT priority change points.
const PCT_CHANGE_EVERY: u64 = 61;

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

/// Hard cap on threads per controlled execution. Model harnesses use 2–5;
/// the cap exists so [`VClock`] can be a fixed array.
pub(crate) const MAX_MODEL_THREADS: usize = 16;

/// A vector clock: component `i` is the last scheduling-point stamp of
/// model thread `i` that the owner has synchronized with.
///
/// Fixed-width rather than a `Vec` so that every facade object embedding
/// one (via `AtomMeta`/`CellMeta`) stays `!needs_drop` — instrumented
/// atomics live inside arena-allocated structures whose destructors never
/// run, and the arena asserts exactly that.
#[derive(Clone, Debug)]
pub(crate) struct VClock([u64; MAX_MODEL_THREADS]);

impl VClock {
    pub(crate) const fn new() -> Self {
        Self([0; MAX_MODEL_THREADS])
    }

    pub(crate) fn get(&self, i: usize) -> u64 {
        self.0[i]
    }

    pub(crate) fn set(&mut self, i: usize, v: u64) {
        self.0[i] = v;
    }

    pub(crate) fn join(&mut self, other: &VClock) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a = (*a).max(*b);
        }
    }

    pub(crate) fn clear(&mut self) {
        self.0 = [0; MAX_MODEL_THREADS];
    }
}

// ---------------------------------------------------------------------------
// Per-object metadata (embedded in facade objects, reset per execution)
// ---------------------------------------------------------------------------

/// Metadata of one instrumented atomic: the clock released by the last
/// release-store (and carried forward by RMWs — the release sequence).
pub(crate) struct AtomMeta {
    pub gen: u64,
    pub release: VClock,
}

impl AtomMeta {
    pub(crate) const fn new() -> Self {
        Self {
            gen: 0,
            release: VClock::new(),
        }
    }
}

/// Metadata of one virtual lock (mutex or rwlock).
pub(crate) struct LockMeta {
    pub gen: u64,
    pub writer: Option<usize>,
    pub readers: u32,
    pub release: VClock,
}

impl LockMeta {
    pub(crate) const fn new() -> Self {
        Self {
            gen: 0,
            writer: None,
            readers: 0,
            release: VClock::new(),
        }
    }
}

/// One recorded access to a tracked cell.
#[derive(Clone, Copy)]
pub(crate) struct CellAccess {
    pub tid: usize,
    pub stamp: u64,
    pub loc: &'static Location<'static>,
}

/// Metadata of one tracked `cell::UnsafeCell`.
pub(crate) struct CellMeta {
    pub gen: u64,
    pub write: Option<CellAccess>,
    pub reads: Vec<CellAccess>,
}

impl CellMeta {
    pub(crate) const fn new() -> Self {
        Self {
            gen: 0,
            write: None,
            reads: Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// Runtime state
// ---------------------------------------------------------------------------

pub(crate) struct Parker {
    token: StdMutex<bool>,
    cv: StdCondvar,
}

impl Parker {
    fn new() -> std::sync::Arc<Parker> {
        std::sync::Arc::new(Parker {
            token: StdMutex::new(false),
            cv: StdCondvar::new(),
        })
    }

    fn unpark(&self) {
        let mut t = self.token.lock().unwrap_or_else(PoisonError::into_inner);
        *t = true;
        self.cv.notify_one();
    }

    fn park(&self) {
        let mut t = self.token.lock().unwrap_or_else(PoisonError::into_inner);
        while !*t {
            t = self.cv.wait(t).unwrap_or_else(PoisonError::into_inner);
        }
        *t = false;
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Block {
    /// Waiting on the virtual lock with this key.
    Lock(usize),
    /// Waiting on the condvar with this key; `timed` waits may be woken by
    /// the scheduler when nothing else can run.
    Condvar { key: usize, timed: bool },
    /// Waiting for thread `tid` to finish.
    Join(usize),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Status {
    Runnable,
    Blocked(Block),
    Finished,
}

pub(crate) struct Th {
    pub status: Status,
    pub prio: i64,
    pub clock: VClock,
    pub parker: std::sync::Arc<Parker>,
    /// Set when a timed condvar wait was woken by the idle-timeout rule.
    pub timed_out: bool,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Mode {
    /// Seeded PCT-style priority scheduling with random change points.
    Pct,
    /// Uniformly random runnable choice per step.
    Random,
    /// Systematic DFS over scheduling choices (exhaustive small-bound).
    Dfs,
}

pub(crate) struct RtState {
    pub gen: u64,
    pub active: bool,
    /// Torn down after a failure: registered threads panic at their next
    /// instrumented operation instead of hanging.
    pub dead: bool,
    pub seed: u64,
    rng: u64,
    pub mode: Mode,
    pub steps: u64,
    pub max_steps: u64,
    pub fingerprint: u64,
    next_prio: i64,
    pub threads: Vec<Th>,
    pub failure: Option<String>,
    /// DFS: `(options, chosen)` per decision this execution.
    pub choices: Vec<(u8, u8)>,
    /// DFS: decision prefix to replay.
    pub replay: Vec<u8>,
    /// Clock released/joined by fences (coarse over-approximation: a fence
    /// synchronizes with every earlier fence, which can only *suppress*
    /// race reports, never fabricate them).
    pub fence_release: VClock,
}

pub(crate) struct Rt {
    pub state: StdMutex<RtState>,
    /// Serializes model executions process-wide.
    pub run_lock: StdMutex<()>,
}

static RT: OnceLock<Rt> = OnceLock::new();

pub(crate) fn rt() -> &'static Rt {
    RT.get_or_init(|| Rt {
        state: StdMutex::new(RtState {
            gen: 0,
            active: false,
            dead: false,
            seed: 0,
            rng: 0,
            mode: Mode::Pct,
            steps: 0,
            max_steps: 0,
            fingerprint: FNV_OFFSET,
            next_prio: 0,
            threads: Vec::new(),
            failure: None,
            choices: Vec::new(),
            replay: Vec::new(),
            fence_release: VClock::new(),
        }),
        run_lock: StdMutex::new(()),
    })
}

thread_local! {
    /// `(generation, tid)` of the model thread running on this OS thread.
    static CURRENT: Cell<Option<(u64, usize)>> = const { Cell::new(None) };
}

/// The current model thread, if this OS thread is registered in the live
/// execution. Clears stale registrations from older generations.
pub(crate) fn current() -> Option<(u64, usize)> {
    let cur = CURRENT.with(|c| c.get())?;
    Some(cur)
}

/// Whether the calling OS thread belongs to the live model execution
/// (validating — and clearing — stale registrations).
pub(crate) fn on_model_thread() -> bool {
    let Some((gen, _)) = current() else {
        return false;
    };
    let st = lock_state();
    if st.gen != gen {
        drop(st);
        set_current(None);
        return false;
    }
    true
}

/// PCT: push the calling model thread below every other priority (used by
/// explicit `yield_now`, which means "someone else should run").
pub(crate) fn deprioritize_current() {
    let Some((gen, me)) = current() else { return };
    let mut st = lock_state();
    if st.gen != gen {
        set_current(None);
        return;
    }
    st.deprioritize(me);
}

fn set_current(v: Option<(u64, usize)>) {
    CURRENT.with(|c| c.set(v));
}

impl RtState {
    fn rng_next(&mut self) -> u64 {
        // SplitMix64: deterministic, seedable, good enough for scheduling.
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn mix(&mut self, v: u64) {
        self.fingerprint = (self.fingerprint ^ v).wrapping_mul(FNV_PRIME);
    }

    /// Freshly deprioritize thread `tid` (PCT change point / yield).
    pub(crate) fn deprioritize(&mut self, tid: usize) {
        self.next_prio -= 1;
        self.threads[tid].prio = self.next_prio;
    }

    fn fresh_prio(&mut self) -> i64 {
        // Distinct positive priorities so fresh threads sit above anything
        // ever deprioritized; ties are impossible.
        (self.rng_next() >> 2) as i64 + 1
    }

    /// Pick the next thread to run, or `None` when every thread has
    /// finished. Converts an all-blocked state into timed wakeups when
    /// possible; otherwise reports deadlock via `Err`.
    fn pick(&mut self) -> Result<Option<usize>, String> {
        loop {
            let runnable: Vec<usize> = self
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status == Status::Runnable)
                .map(|(i, _)| i)
                .collect();
            if runnable.is_empty() {
                if self.threads.iter().all(|t| t.status == Status::Finished) {
                    return Ok(None);
                }
                // Idle-timeout rule: timed waits only ever expire when the
                // execution would otherwise be stuck — time does not exist
                // in the model, but forward progress must.
                let mut woke = false;
                for t in self.threads.iter_mut() {
                    if let Status::Blocked(Block::Condvar { timed: true, .. }) = t.status {
                        t.status = Status::Runnable;
                        t.timed_out = true;
                        woke = true;
                    }
                }
                if woke {
                    continue;
                }
                let mut msg = format!(
                    "deadlock: every live thread is blocked (seed {})",
                    self.seed
                );
                for (i, t) in self.threads.iter().enumerate() {
                    msg.push_str(&format!("\n  thread {i}: {:?}", t.status));
                }
                return Err(msg);
            }
            let idx = match self.mode {
                Mode::Pct => {
                    let mut best = runnable[0];
                    for &r in &runnable[1..] {
                        if self.threads[r].prio > self.threads[best].prio {
                            best = r;
                        }
                    }
                    runnable.iter().position(|&r| r == best).unwrap_or(0)
                }
                Mode::Random => (self.rng_next() % runnable.len() as u64) as usize,
                Mode::Dfs => {
                    let depth = self.choices.len();
                    let i = self
                        .replay
                        .get(depth)
                        .map_or(0, |&c| (c as usize).min(runnable.len() - 1));
                    self.choices.push((runnable.len() as u8, i as u8));
                    i
                }
            };
            let chosen = runnable[idx];
            self.mix(chosen as u64 + 1);
            return Ok(Some(chosen));
        }
    }
}

// ---------------------------------------------------------------------------
// Teardown / failure plumbing
// ---------------------------------------------------------------------------

/// Record `msg` as the primary failure (first wins), tear the execution
/// down so no thread can hang parked, and panic on the calling thread.
pub(crate) fn fail(mut st: std::sync::MutexGuard<'_, RtState>, msg: String) -> ! {
    if st.failure.is_none() {
        st.failure = Some(msg.clone());
    }
    teardown_locked(&mut st);
    drop(st);
    panic!("{msg}");
}

fn teardown_locked(st: &mut RtState) {
    st.dead = true;
    for t in &st.threads {
        t.parker.unpark();
    }
}

fn dead_panic() -> ! {
    panic!("bohm-sync model: execution torn down after a failure (see the primary report)");
}

// ---------------------------------------------------------------------------
// Scheduling entry points
// ---------------------------------------------------------------------------

fn lock_state() -> std::sync::MutexGuard<'static, RtState> {
    rt().state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One scheduling point: advance the step counter, tick the thread's clock,
/// maybe preempt. Returns without effect on non-model threads.
pub(crate) fn yield_point() {
    let Some((gen, me)) = current() else { return };
    let mut st = lock_state();
    if gen != st.gen {
        set_current(None);
        return;
    }
    if st.dead {
        drop(st);
        dead_panic();
    }
    st.steps += 1;
    if st.steps > st.max_steps {
        let msg = format!(
            "scheduling-point budget exceeded ({} steps) — livelock or undersized bound (seed {})",
            st.max_steps, st.seed
        );
        fail(st, msg);
    }
    let stamp = st.steps;
    st.threads[me].clock.set(me, stamp);
    if st.mode == Mode::Pct && st.rng_next().is_multiple_of(PCT_CHANGE_EVERY) {
        st.deprioritize(me);
    }
    let next = match st.pick() {
        Ok(Some(n)) => n,
        Ok(None) => unreachable!("the caller is runnable"),
        Err(msg) => fail(st, msg),
    };
    switch_from(st, me, next);
}

/// Hand the token from `me` to `next` (parking `me` unless they're equal).
fn switch_from(st: std::sync::MutexGuard<'_, RtState>, me: usize, next: usize) {
    if next == me {
        return;
    }
    let next_parker = std::sync::Arc::clone(&st.threads[next].parker);
    let my_parker = std::sync::Arc::clone(&st.threads[me].parker);
    drop(st);
    next_parker.unpark();
    my_parker.park();
    let st = lock_state();
    if st.dead {
        drop(st);
        dead_panic();
    }
}

/// Block the current thread with `reason` and run something else. Returns
/// once a waker has made the thread runnable again (and it was scheduled).
pub(crate) fn block_current(mut st: std::sync::MutexGuard<'_, RtState>, me: usize, reason: Block) {
    st.threads[me].status = Status::Blocked(reason);
    let next = match st.pick() {
        Ok(Some(n)) => n,
        // Every *other* thread finished while we block: with no possible
        // waker this is a deadlock unless the idle-timeout rule fired and
        // made `me` runnable again (pick() retries after waking).
        Ok(None) => {
            let msg = format!(
                "all threads finished with thread {me} blocked (seed {})",
                st.seed
            );
            fail(st, msg)
        }
        Err(msg) => fail(st, msg),
    };
    if next == me {
        // Idle-timeout rule woke us inside pick(); no switch needed.
        st.threads[me].status = Status::Runnable;
        return;
    }
    switch_from(st, me, next);
}

/// Wake every thread blocked on virtual lock `key`.
pub(crate) fn wake_lock_waiters(st: &mut RtState, key: usize) {
    for t in st.threads.iter_mut() {
        if t.status == Status::Blocked(Block::Lock(key)) {
            t.status = Status::Runnable;
        }
    }
}

/// Wake waiters of condvar `key`: all of them, or one chosen by the seeded
/// RNG (a scheduling decision in its own right).
pub(crate) fn notify_condvar(st: &mut RtState, key: usize, all: bool) {
    let waiters: Vec<usize> = st
        .threads
        .iter()
        .enumerate()
        .filter(
            |(_, t)| matches!(t.status, Status::Blocked(Block::Condvar { key: k, .. }) if k == key),
        )
        .map(|(i, _)| i)
        .collect();
    if waiters.is_empty() {
        return;
    }
    if all {
        for w in waiters {
            st.threads[w].status = Status::Runnable;
        }
    } else {
        let pick = match st.mode {
            Mode::Dfs => 0, // deterministic without extra choice points
            _ => (st.rng_next() % waiters.len() as u64) as usize,
        };
        st.threads[waiters[pick]].status = Status::Runnable;
    }
}

// ---------------------------------------------------------------------------
// Thread lifecycle
// ---------------------------------------------------------------------------

/// Register a child thread spawned by model thread `me`. Returns the child
/// tid and its parker (the child parks until first scheduled).
pub(crate) fn register_child(me: usize) -> (u64, usize, std::sync::Arc<Parker>) {
    let mut st = lock_state();
    if st.dead {
        drop(st);
        dead_panic();
    }
    let tid = st.threads.len();
    assert!(
        tid < MAX_MODEL_THREADS,
        "model harness spawned more than {MAX_MODEL_THREADS} threads; \
         keep models small (or raise MAX_MODEL_THREADS)"
    );
    let prio = st.fresh_prio();
    let mut clock = st.threads[me].clock.clone();
    let stamp = st.steps;
    clock.set(tid, stamp);
    let parker = Parker::new();
    st.threads.push(Th {
        status: Status::Runnable,
        prio,
        clock,
        parker: std::sync::Arc::clone(&parker),
        timed_out: false,
    });
    (st.gen, tid, parker)
}

/// Child-thread preamble: adopt the registration and wait to be scheduled.
pub(crate) fn child_start(gen: u64, tid: usize, parker: &Parker) {
    set_current(Some((gen, tid)));
    parker.park();
    let st = lock_state();
    if st.dead || st.gen != gen {
        drop(st);
        set_current(None);
        dead_panic();
    }
}

/// Child-thread epilogue: mark finished, wake joiners, hand the token on.
pub(crate) fn finish_thread(gen: u64, tid: usize, panicked: Option<String>) {
    set_current(None);
    let mut st = lock_state();
    if st.gen != gen {
        return;
    }
    st.threads[tid].status = Status::Finished;
    for t in st.threads.iter_mut() {
        if t.status == Status::Blocked(Block::Join(tid)) {
            t.status = Status::Runnable;
        }
    }
    if let Some(msg) = panicked {
        if st.failure.is_none() {
            st.failure = Some(format!("{msg} (seed {})", st.seed));
        }
        teardown_locked(&mut st);
        return;
    }
    if st.dead {
        return;
    }
    match st.pick() {
        Ok(Some(n)) => {
            let p = std::sync::Arc::clone(&st.threads[n].parker);
            drop(st);
            p.unpark();
        }
        Ok(None) => {
            // Everyone finished: wake the drain waiter (thread 0's parker).
            let p = std::sync::Arc::clone(&st.threads[0].parker);
            drop(st);
            p.unpark();
        }
        Err(msg) => {
            // Deadlock discovered while exiting cleanly: record, tear down,
            // but don't panic this (already successful) thread.
            if st.failure.is_none() {
                st.failure = Some(msg);
            }
            teardown_locked(&mut st);
        }
    }
}

/// Model-aware join: wait for `tid` to finish, joining its final clock.
pub(crate) fn join_thread(target: usize) {
    loop {
        let Some((gen, me)) = current() else { return };
        let mut st = lock_state();
        if st.gen != gen {
            set_current(None);
            return;
        }
        if st.dead {
            drop(st);
            dead_panic();
        }
        if st.threads[target].status == Status::Finished {
            let child_clock = st.threads[target].clock.clone();
            st.threads[me].clock.join(&child_clock);
            return;
        }
        block_current(st, me, Block::Join(target));
    }
}

// ---------------------------------------------------------------------------
// Execution driver
// ---------------------------------------------------------------------------

/// Outcome of one controlled execution (internal; `model::Execution` is the
/// public projection).
pub(crate) struct RunOutcome {
    pub fingerprint: u64,
    pub steps: u64,
    pub choices: Vec<(u8, u8)>,
}

/// Run `f` as model thread 0 under the scheduler. Panics (with the seed in
/// the message) on any race, deadlock, budget overrun or harness panic.
pub(crate) fn run_one(
    seed: u64,
    mode: Mode,
    max_steps: u64,
    replay: Vec<u8>,
    f: impl FnOnce(),
) -> RunOutcome {
    let rt = rt();
    let _run = rt.run_lock.lock().unwrap_or_else(PoisonError::into_inner);
    {
        let mut st = lock_state();
        st.gen += 1;
        st.active = true;
        st.dead = false;
        st.seed = seed;
        st.rng = seed ^ 0x5851_F42D_4C95_7F2D;
        st.mode = mode;
        st.steps = 0;
        st.max_steps = max_steps;
        st.fingerprint = FNV_OFFSET;
        st.next_prio = 0;
        st.threads.clear();
        st.failure = None;
        st.choices.clear();
        st.replay = replay;
        st.fence_release.clear();
        let prio = st.fresh_prio();
        st.threads.push(Th {
            status: Status::Runnable,
            prio,
            clock: VClock::new(),
            parker: Parker::new(),
            timed_out: false,
        });
        set_current(Some((st.gen, 0)));
    }
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));

    // Drain: let any still-live threads run to completion (they were
    // spawned but not joined), or tear down after a harness panic.
    let wait_done = {
        let mut st = lock_state();
        st.threads[0].status = Status::Finished;
        for t in st.threads.iter_mut() {
            if t.status == Status::Blocked(Block::Join(0)) {
                t.status = Status::Runnable;
            }
        }
        if let Err(p) = &r {
            if st.failure.is_none() {
                st.failure = Some(format!("{} (seed {seed})", panic_msg(p)));
            }
            teardown_locked(&mut st);
            false
        } else if st.dead || st.threads.iter().all(|t| t.status == Status::Finished) {
            false
        } else {
            match st.pick() {
                Ok(Some(n)) => {
                    let p = std::sync::Arc::clone(&st.threads[n].parker);
                    drop(st);
                    p.unpark();
                    true
                }
                Ok(None) => false,
                Err(msg) => {
                    if st.failure.is_none() {
                        st.failure = Some(msg);
                    }
                    teardown_locked(&mut st);
                    false
                }
            }
        }
    };
    if wait_done {
        let parker = {
            let st = lock_state();
            std::sync::Arc::clone(&st.threads[0].parker)
        };
        parker.park();
    }

    let mut st = lock_state();
    st.active = false;
    set_current(None);
    let failure = st.failure.take();
    let outcome = RunOutcome {
        fingerprint: st.fingerprint,
        steps: st.steps,
        choices: std::mem::take(&mut st.choices),
    };
    drop(st);
    if let Some(msg) = failure {
        eprintln!("bohm-sync model: failing execution; replay with BOHM_MODEL_SEED={seed}");
        panic!("{msg}");
    }
    if let Err(p) = r {
        std::panic::resume_unwind(p);
    }
    outcome
}

pub(crate) fn panic_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        format!("harness panicked under model: {s}")
    } else if let Some(s) = p.downcast_ref::<String>() {
        format!("harness panicked under model: {s}")
    } else {
        "harness panicked under model".to_owned()
    }
}

// ---------------------------------------------------------------------------
// Shared op helpers used by the instrumented types
// ---------------------------------------------------------------------------

use std::sync::atomic::Ordering;

pub(crate) fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

pub(crate) fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// Clock effects of one atomic operation, applied after the real op ran.
/// `rmw`: read-modify-write ops keep the existing release clock alive even
/// when relaxed (the release-sequence rule); plain relaxed stores kill it.
pub(crate) fn atomic_edges(
    meta: &StdMutex<AtomMeta>,
    acquire: bool,
    release: bool,
    store: bool,
    rmw: bool,
) {
    let Some((gen, me)) = current() else { return };
    let mut st = lock_state();
    if st.gen != gen {
        set_current(None);
        return;
    }
    let mut m = meta.lock().unwrap_or_else(PoisonError::into_inner);
    if m.gen != st.gen {
        m.release.clear();
        m.gen = st.gen;
    }
    if acquire {
        // Split-borrow: clone the release clock out first.
        let rel = m.release.clone();
        st.threads[me].clock.join(&rel);
    }
    if release {
        let clock = st.threads[me].clock.clone();
        if rmw {
            m.release.join(&clock);
        } else {
            m.release = clock;
        }
    } else if store && !rmw {
        // A relaxed plain store: later acquire loads of the new value
        // synchronize with nothing.
        m.release.clear();
    }
}

/// Fence clock effects (coarse; see `RtState::fence_release`).
pub(crate) fn fence_edges(ord: Ordering) {
    let Some((gen, me)) = current() else { return };
    let mut st = lock_state();
    if st.gen != gen {
        set_current(None);
        return;
    }
    if is_acquire(ord) {
        let rel = st.fence_release.clone();
        st.threads[me].clock.join(&rel);
    }
    if is_release(ord) {
        let clock = st.threads[me].clock.clone();
        st.fence_release.join(&clock);
    }
}

/// Race-check a tracked-cell access and record it.
#[allow(clippy::needless_pass_by_value)]
pub(crate) fn cell_access(meta: &StdMutex<CellMeta>, write: bool, loc: &'static Location<'static>) {
    let Some((gen, me)) = current() else { return };
    let st = lock_state();
    if st.gen != gen {
        set_current(None);
        return;
    }
    let mut m = meta.lock().unwrap_or_else(PoisonError::into_inner);
    if m.gen != st.gen {
        m.write = None;
        m.reads.clear();
        m.gen = st.gen;
    }
    let clock = &st.threads[me].clock;
    let mut conflict: Option<(CellAccess, &str)> = None;
    if let Some(w) = m.write {
        if w.tid != me && clock.get(w.tid) < w.stamp {
            conflict = Some((w, "write"));
        }
    }
    if write && conflict.is_none() {
        for r in &m.reads {
            if r.tid != me && clock.get(r.tid) < r.stamp {
                conflict = Some((*r, "read"));
                break;
            }
        }
    }
    if let Some((prior, prior_kind)) = conflict {
        let kind = if write { "write" } else { "read" };
        let msg = format!(
            "data race detected (seed {}): {kind} at {loc} by thread {me} is unordered \
             (no happens-before) with {prior_kind} at {} by thread {}",
            st.seed, prior.loc, prior.tid
        );
        drop(m);
        fail(st, msg);
    }
    let stamp = clock.get(me);
    if write {
        m.write = Some(CellAccess {
            tid: me,
            stamp,
            loc,
        });
        m.reads.clear();
    } else {
        if let Some(r) = m.reads.iter_mut().find(|r| r.tid == me) {
            r.stamp = stamp;
            r.loc = loc;
        } else {
            m.reads.push(CellAccess {
                tid: me,
                stamp,
                loc,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Virtual locks (shared by Mutex and RwLock)
// ---------------------------------------------------------------------------

/// Acquire the virtual lock: `shared = false` for exclusive (mutex/writer),
/// `true` for a reader slot.
pub(crate) fn lock_acquire(meta: &StdMutex<LockMeta>, key: usize, shared: bool) {
    yield_point();
    loop {
        let Some((gen, me)) = current() else { return };
        let mut st = lock_state();
        if st.gen != gen {
            set_current(None);
            return;
        }
        if st.dead {
            drop(st);
            dead_panic();
        }
        let mut m = meta.lock().unwrap_or_else(PoisonError::into_inner);
        if m.gen != st.gen {
            m.writer = None;
            m.readers = 0;
            m.release.clear();
            m.gen = st.gen;
        }
        let free = if shared {
            m.writer.is_none()
        } else {
            m.writer.is_none() && m.readers == 0
        };
        if free {
            if shared {
                m.readers += 1;
            } else {
                m.writer = Some(me);
            }
            let rel = m.release.clone();
            st.threads[me].clock.join(&rel);
            return;
        }
        drop(m);
        block_current(st, me, Block::Lock(key));
    }
}

/// Try-acquire without blocking; returns whether the lock was taken.
pub(crate) fn lock_try_acquire(meta: &StdMutex<LockMeta>, shared: bool) -> bool {
    yield_point();
    let Some((gen, me)) = current() else {
        return true;
    };
    let mut st = lock_state();
    if st.gen != gen {
        set_current(None);
        return true;
    }
    let mut m = meta.lock().unwrap_or_else(PoisonError::into_inner);
    if m.gen != st.gen {
        m.writer = None;
        m.readers = 0;
        m.release.clear();
        m.gen = st.gen;
    }
    let free = if shared {
        m.writer.is_none()
    } else {
        m.writer.is_none() && m.readers == 0
    };
    if free {
        if shared {
            m.readers += 1;
        } else {
            m.writer = Some(me);
        }
        let rel = m.release.clone();
        st.threads[me].clock.join(&rel);
    }
    free
}

/// Release the virtual lock and wake its waiters.
pub(crate) fn lock_release(meta: &StdMutex<LockMeta>, key: usize, shared: bool) {
    let Some((gen, me)) = current() else { return };
    let mut st = lock_state();
    if st.gen != gen {
        set_current(None);
        return;
    }
    if st.dead {
        // Post-teardown guard drops must not panic (they run during unwind).
        return;
    }
    let mut m = meta.lock().unwrap_or_else(PoisonError::into_inner);
    if m.gen != st.gen {
        return;
    }
    let clock = st.threads[me].clock.clone();
    m.release.join(&clock);
    if shared {
        m.readers = m.readers.saturating_sub(1);
    } else {
        m.writer = None;
    }
    drop(m);
    wake_lock_waiters(&mut st, key);
}

/// Condvar wait (the mutex's virtual state is released around the block).
/// Returns whether the wait ended via the idle-timeout rule.
pub(crate) fn condvar_wait(
    mutex_meta: &StdMutex<LockMeta>,
    mutex_key: usize,
    cv_key: usize,
    timed: bool,
) -> bool {
    yield_point();
    let Some((gen, me)) = current() else {
        return false;
    };
    // Release the mutex.
    lock_release(mutex_meta, mutex_key, false);
    let mut st = lock_state();
    if st.gen != gen {
        set_current(None);
        return false;
    }
    if st.dead {
        drop(st);
        dead_panic();
    }
    st.threads[me].timed_out = false;
    block_current(st, me, Block::Condvar { key: cv_key, timed });
    let timed_out = {
        let mut st = lock_state();
        if st.gen == gen {
            std::mem::take(&mut st.threads[me].timed_out)
        } else {
            false
        }
    };
    // Reacquire the mutex before returning to the waiter's critical section.
    lock_acquire(mutex_meta, mutex_key, false);
    timed_out
}

/// Condvar notify.
pub(crate) fn condvar_notify(cv_key: usize, all: bool) {
    yield_point();
    let Some((gen, _)) = current() else { return };
    let mut st = lock_state();
    if st.gen != gen {
        set_current(None);
        return;
    }
    notify_condvar(&mut st, cv_key, all);
}
