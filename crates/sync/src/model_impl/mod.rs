//! Model-checking personality (`--cfg bohm_modelcheck`): instrumented
//! twins of everything `real` re-exports, driven by the controlled
//! scheduler in [`rt`].

mod api;
mod atomic_impl;
mod cell_impl;
mod lock;
mod rt;
mod thread_impl;

pub use lock::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

/// Instrumented `std::sync::atomic` twins (orderings are the real enum).
pub mod atomic {
    pub use super::atomic_impl::{
        fence, AtomicBool, AtomicI64, AtomicPtr, AtomicU32, AtomicU64, AtomicU8, AtomicUsize,
    };
    pub use std::sync::atomic::Ordering;
}

/// Spin hints (scheduling points under the model).
pub mod hint {
    /// Instrumented [`std::hint::spin_loop`]: a scheduling point on a
    /// model thread, the real pause instruction otherwise.
    pub fn spin_loop() {
        if super::rt::on_model_thread() {
            super::rt::yield_point();
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Model-aware thread spawning and yielding.
pub mod thread {
    pub use super::thread_impl::{spawn, yield_now, JoinHandle};
}

/// Tracked interior-mutability cell (the race detector's probe points).
pub mod cell {
    pub use super::cell_impl::UnsafeCell;
}

/// Model-check harness API.
pub mod model {
    pub use super::api::{exhaustive, explore, run, Execution, Options};
}
