//! Instrumented atomics: each type wraps the real `std::sync::atomic` twin
//! (so fallback/non-model threads stay correct) plus per-object
//! happens-before metadata. Every operation on a model thread is a
//! scheduling point, and its memory-ordering argument drives exactly the
//! vector-clock edges the C++11 model grants:
//!
//! * release store → publishes the storer's clock on the object;
//! * relaxed plain store → *clears* it (later acquire loads of that value
//!   synchronize with nothing — this is what makes dropped-`Release` bugs
//!   detectable);
//! * relaxed RMW → preserves it (the release-sequence rule);
//! * acquire load / successful acquire RMW → joins it;
//! * failed CAS → a load with the failure ordering.

use std::sync::atomic::Ordering;
use std::sync::Mutex as StdMutex;

use super::rt;
use super::rt::AtomMeta;

macro_rules! instrumented_int {
    ($(#[$doc:meta])* $name:ident, $std:ident, $prim:ty) => {
        $(#[$doc])*
        pub struct $name {
            v: std::sync::atomic::$std,
            meta: StdMutex<AtomMeta>,
        }

        impl $name {
            /// Create a new atomic.
            pub const fn new(v: $prim) -> Self {
                Self {
                    v: std::sync::atomic::$std::new(v),
                    meta: StdMutex::new(AtomMeta::new()),
                }
            }

            /// Atomic load.
            pub fn load(&self, ord: Ordering) -> $prim {
                rt::yield_point();
                let r = self.v.load(ord);
                rt::atomic_edges(&self.meta, rt::is_acquire(ord), false, false, false);
                r
            }

            /// Atomic store.
            pub fn store(&self, val: $prim, ord: Ordering) {
                rt::yield_point();
                self.v.store(val, ord);
                rt::atomic_edges(&self.meta, false, rt::is_release(ord), true, false);
            }

            /// Atomic swap.
            pub fn swap(&self, val: $prim, ord: Ordering) -> $prim {
                rt::yield_point();
                let r = self.v.swap(val, ord);
                rt::atomic_edges(&self.meta, rt::is_acquire(ord), rt::is_release(ord), true, true);
                r
            }

            /// Atomic fetch-add.
            pub fn fetch_add(&self, val: $prim, ord: Ordering) -> $prim {
                rt::yield_point();
                let r = self.v.fetch_add(val, ord);
                rt::atomic_edges(&self.meta, rt::is_acquire(ord), rt::is_release(ord), true, true);
                r
            }

            /// Atomic fetch-sub.
            pub fn fetch_sub(&self, val: $prim, ord: Ordering) -> $prim {
                rt::yield_point();
                let r = self.v.fetch_sub(val, ord);
                rt::atomic_edges(&self.meta, rt::is_acquire(ord), rt::is_release(ord), true, true);
                r
            }

            /// Atomic fetch-or.
            pub fn fetch_or(&self, val: $prim, ord: Ordering) -> $prim {
                rt::yield_point();
                let r = self.v.fetch_or(val, ord);
                rt::atomic_edges(&self.meta, rt::is_acquire(ord), rt::is_release(ord), true, true);
                r
            }

            /// Atomic fetch-and.
            pub fn fetch_and(&self, val: $prim, ord: Ordering) -> $prim {
                rt::yield_point();
                let r = self.v.fetch_and(val, ord);
                rt::atomic_edges(&self.meta, rt::is_acquire(ord), rt::is_release(ord), true, true);
                r
            }

            /// Atomic fetch-max.
            pub fn fetch_max(&self, val: $prim, ord: Ordering) -> $prim {
                rt::yield_point();
                let r = self.v.fetch_max(val, ord);
                rt::atomic_edges(&self.meta, rt::is_acquire(ord), rt::is_release(ord), true, true);
                r
            }

            /// Atomic fetch-min.
            pub fn fetch_min(&self, val: $prim, ord: Ordering) -> $prim {
                rt::yield_point();
                let r = self.v.fetch_min(val, ord);
                rt::atomic_edges(&self.meta, rt::is_acquire(ord), rt::is_release(ord), true, true);
                r
            }

            /// Atomic compare-exchange.
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                rt::yield_point();
                let r = self.v.compare_exchange(current, new, success, failure);
                match r {
                    Ok(_) => rt::atomic_edges(
                        &self.meta,
                        rt::is_acquire(success),
                        rt::is_release(success),
                        true,
                        true,
                    ),
                    Err(_) => {
                        rt::atomic_edges(&self.meta, rt::is_acquire(failure), false, false, false)
                    }
                }
                r
            }

            /// Atomic compare-exchange (weak form).
            ///
            /// Implemented with the strong CAS so spurious hardware failures
            /// cannot make an execution diverge from its seed.
            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.compare_exchange(current, new, success, failure)
            }

            /// Exclusive in-place access (no instrumentation needed).
            pub fn get_mut(&mut self) -> &mut $prim {
                self.v.get_mut()
            }

            /// Consume the atomic, returning the value.
            pub fn into_inner(self) -> $prim {
                self.v.into_inner()
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(Default::default())
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_tuple(stringify!($name))
                    // RELAXED: uninstrumented diagnostic peek — Debug must
                    // not be a scheduling point; its output may race.
                    .field(&self.v.load(Ordering::Relaxed))
                    .finish()
            }
        }
    };
}

instrumented_int!(
    /// Instrumented [`std::sync::atomic::AtomicU8`].
    AtomicU8,
    AtomicU8,
    u8
);
instrumented_int!(
    /// Instrumented [`std::sync::atomic::AtomicU32`].
    AtomicU32,
    AtomicU32,
    u32
);
instrumented_int!(
    /// Instrumented [`std::sync::atomic::AtomicU64`].
    AtomicU64,
    AtomicU64,
    u64
);
instrumented_int!(
    /// Instrumented [`std::sync::atomic::AtomicUsize`].
    AtomicUsize,
    AtomicUsize,
    usize
);
instrumented_int!(
    /// Instrumented [`std::sync::atomic::AtomicI64`].
    AtomicI64,
    AtomicI64,
    i64
);

/// Instrumented [`std::sync::atomic::AtomicBool`].
pub struct AtomicBool {
    v: std::sync::atomic::AtomicBool,
    meta: StdMutex<AtomMeta>,
}

impl AtomicBool {
    /// Create a new atomic.
    pub const fn new(v: bool) -> Self {
        Self {
            v: std::sync::atomic::AtomicBool::new(v),
            meta: StdMutex::new(AtomMeta::new()),
        }
    }

    /// Atomic load.
    pub fn load(&self, ord: Ordering) -> bool {
        rt::yield_point();
        let r = self.v.load(ord);
        rt::atomic_edges(&self.meta, rt::is_acquire(ord), false, false, false);
        r
    }

    /// Atomic store.
    pub fn store(&self, val: bool, ord: Ordering) {
        rt::yield_point();
        self.v.store(val, ord);
        rt::atomic_edges(&self.meta, false, rt::is_release(ord), true, false);
    }

    /// Atomic swap.
    pub fn swap(&self, val: bool, ord: Ordering) -> bool {
        rt::yield_point();
        let r = self.v.swap(val, ord);
        rt::atomic_edges(
            &self.meta,
            rt::is_acquire(ord),
            rt::is_release(ord),
            true,
            true,
        );
        r
    }

    /// Atomic fetch-or.
    pub fn fetch_or(&self, val: bool, ord: Ordering) -> bool {
        rt::yield_point();
        let r = self.v.fetch_or(val, ord);
        rt::atomic_edges(
            &self.meta,
            rt::is_acquire(ord),
            rt::is_release(ord),
            true,
            true,
        );
        r
    }

    /// Atomic fetch-and.
    pub fn fetch_and(&self, val: bool, ord: Ordering) -> bool {
        rt::yield_point();
        let r = self.v.fetch_and(val, ord);
        rt::atomic_edges(
            &self.meta,
            rt::is_acquire(ord),
            rt::is_release(ord),
            true,
            true,
        );
        r
    }

    /// Atomic compare-exchange.
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        rt::yield_point();
        let r = self.v.compare_exchange(current, new, success, failure);
        match r {
            Ok(_) => rt::atomic_edges(
                &self.meta,
                rt::is_acquire(success),
                rt::is_release(success),
                true,
                true,
            ),
            Err(_) => rt::atomic_edges(&self.meta, rt::is_acquire(failure), false, false, false),
        }
        r
    }

    /// Atomic compare-exchange (weak form; strong underneath for
    /// seed-determinism).
    pub fn compare_exchange_weak(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        self.compare_exchange(current, new, success, failure)
    }

    /// Exclusive in-place access.
    pub fn get_mut(&mut self) -> &mut bool {
        self.v.get_mut()
    }

    /// Consume the atomic, returning the value.
    pub fn into_inner(self) -> bool {
        self.v.into_inner()
    }
}

impl Default for AtomicBool {
    fn default() -> Self {
        Self::new(false)
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AtomicBool")
            // RELAXED: diagnostic peek; Debug output may race.
            .field(&self.v.load(Ordering::Relaxed))
            .finish()
    }
}

/// Instrumented [`std::sync::atomic::AtomicPtr`].
pub struct AtomicPtr<T> {
    v: std::sync::atomic::AtomicPtr<T>,
    meta: StdMutex<AtomMeta>,
}

impl<T> AtomicPtr<T> {
    /// Create a new atomic pointer.
    pub const fn new(p: *mut T) -> Self {
        Self {
            v: std::sync::atomic::AtomicPtr::new(p),
            meta: StdMutex::new(AtomMeta::new()),
        }
    }

    /// Atomic load.
    pub fn load(&self, ord: Ordering) -> *mut T {
        rt::yield_point();
        let r = self.v.load(ord);
        rt::atomic_edges(&self.meta, rt::is_acquire(ord), false, false, false);
        r
    }

    /// Atomic store.
    pub fn store(&self, p: *mut T, ord: Ordering) {
        rt::yield_point();
        self.v.store(p, ord);
        rt::atomic_edges(&self.meta, false, rt::is_release(ord), true, false);
    }

    /// Atomic swap.
    pub fn swap(&self, p: *mut T, ord: Ordering) -> *mut T {
        rt::yield_point();
        let r = self.v.swap(p, ord);
        rt::atomic_edges(
            &self.meta,
            rt::is_acquire(ord),
            rt::is_release(ord),
            true,
            true,
        );
        r
    }

    /// Atomic compare-exchange.
    pub fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        rt::yield_point();
        let r = self.v.compare_exchange(current, new, success, failure);
        match r {
            Ok(_) => rt::atomic_edges(
                &self.meta,
                rt::is_acquire(success),
                rt::is_release(success),
                true,
                true,
            ),
            Err(_) => rt::atomic_edges(&self.meta, rt::is_acquire(failure), false, false, false),
        }
        r
    }

    /// Atomic compare-exchange (weak form; strong underneath for
    /// seed-determinism).
    pub fn compare_exchange_weak(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        self.compare_exchange(current, new, success, failure)
    }

    /// Exclusive in-place access.
    pub fn get_mut(&mut self) -> &mut *mut T {
        self.v.get_mut()
    }

    /// Consume the atomic, returning the pointer.
    pub fn into_inner(self) -> *mut T {
        self.v.into_inner()
    }
}

impl<T> Default for AtomicPtr<T> {
    fn default() -> Self {
        Self::new(std::ptr::null_mut())
    }
}

impl<T> std::fmt::Debug for AtomicPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AtomicPtr")
            // RELAXED: diagnostic peek; Debug output may race.
            .field(&self.v.load(Ordering::Relaxed))
            .finish()
    }
}

/// Instrumented [`std::sync::atomic::fence`].
pub fn fence(ord: Ordering) {
    rt::yield_point();
    std::sync::atomic::fence(ord);
    rt::fence_edges(ord);
}
