//! Test substrate: a serial oracle and equivalence checkers.
//!
//! The core correctness claim of every engine here is serializability:
//! the concurrent execution must be equivalent to *some* serial order —
//! and for BOHM specifically to **the log order** (paper §3.3.3: timestamp
//! order *is* the serialization order). The [`SerialOracle`] executes the
//! same transactions one at a time on a plain in-memory store; comparing
//! final states and per-transaction outcomes against it is how the
//! integration and property tests validate the engines.

use bohm_common::engine::ExecOutcome;
use bohm_common::{AbortReason, Access, RecordId, Txn};
use bohm_workloads::DatabaseSpec;

/// A trivially-correct single-threaded executor.
pub struct SerialOracle {
    tables: Vec<Vec<Box<[u8]>>>,
    scratch: Vec<u8>,
}

struct OracleAccess<'a> {
    tables: &'a Vec<Vec<Box<[u8]>>>,
    txn: &'a Txn,
    /// Buffered writes, applied only on commit (keeps the oracle correct
    /// even for procedures that violate the abort-before-write contract).
    pending: Vec<(RecordId, Box<[u8]>)>,
}

impl Access for OracleAccess<'_> {
    fn read(&mut self, idx: usize, out: &mut dyn FnMut(&[u8])) -> Result<(), AbortReason> {
        let rid = self.txn.reads[idx];
        if let Some((_, data)) = self.pending.iter().rev().find(|(r, _)| *r == rid) {
            out(data);
            return Ok(());
        }
        out(&self.tables[rid.table.index()][rid.row as usize]);
        Ok(())
    }

    fn write(&mut self, idx: usize, data: &[u8]) -> Result<(), AbortReason> {
        let rid = self.txn.writes[idx];
        assert_eq!(
            data.len(),
            self.tables[rid.table.index()][rid.row as usize].len(),
            "payload must be record-sized"
        );
        self.pending.push((rid, data.into()));
        Ok(())
    }

    fn write_len(&mut self, idx: usize) -> usize {
        let rid = self.txn.writes[idx];
        self.tables[rid.table.index()][rid.row as usize].len()
    }
}

impl SerialOracle {
    pub fn new(spec: &DatabaseSpec) -> Self {
        let tables = spec
            .tables
            .iter()
            .map(|t| {
                (0..t.rows)
                    .map(|row| bohm_common::value::of_u64((t.seed)(row), t.record_size))
                    .collect()
            })
            .collect();
        Self {
            tables,
            scratch: Vec::new(),
        }
    }

    /// Execute one transaction serially; returns the same outcome shape the
    /// engines report.
    pub fn apply(&mut self, txn: &Txn) -> ExecOutcome {
        let mut access = OracleAccess {
            tables: &self.tables,
            txn,
            pending: Vec::new(),
        };
        match bohm_common::execute_procedure(
            &txn.proc,
            &txn.reads,
            &txn.writes,
            &mut access,
            &mut self.scratch,
        ) {
            Ok(fp) => {
                let pending = access.pending;
                for (rid, data) in pending {
                    self.tables[rid.table.index()][rid.row as usize] = data;
                }
                ExecOutcome {
                    committed: true,
                    fingerprint: fp,
                    cc_retries: 0,
                }
            }
            Err(AbortReason::User) => ExecOutcome {
                committed: false,
                fingerprint: 0,
                cc_retries: 0,
            },
            Err(e) => unreachable!("oracle cannot raise {e:?}"),
        }
    }

    /// Current `u64` prefix of a record.
    pub fn read_u64(&self, rid: RecordId) -> u64 {
        bohm_common::value::get_u64(&self.tables[rid.table.index()][rid.row as usize], 0)
    }

    /// Raw record bytes.
    pub fn read_record(&self, rid: RecordId) -> &[u8] {
        &self.tables[rid.table.index()][rid.row as usize]
    }

    pub fn table_rows(&self, table: usize) -> u64 {
        self.tables[table].len() as u64
    }
}

/// Replay `txns` serially and compare against an engine's observed
/// per-transaction outcomes and final state.
///
/// `read_final` exposes the engine's committed value of each record after
/// the run. Returns a description of the first divergence, if any.
pub fn check_serial_equivalence(
    spec: &DatabaseSpec,
    txns: &[Txn],
    outcomes: &[ExecOutcome],
    read_final: impl Fn(RecordId) -> Option<u64>,
) -> Result<(), String> {
    assert_eq!(txns.len(), outcomes.len());
    let mut oracle = SerialOracle::new(spec);
    for (i, (t, got)) in txns.iter().zip(outcomes).enumerate() {
        let want = oracle.apply(t);
        if want.committed != got.committed {
            return Err(format!(
                "txn {i}: engine {} but serial order says {}",
                if got.committed {
                    "committed"
                } else {
                    "aborted"
                },
                if want.committed { "commit" } else { "abort" },
            ));
        }
        if want.committed && want.fingerprint != got.fingerprint {
            return Err(format!(
                "txn {i}: read fingerprint {:#x} != serial {:#x} (reads observed a non-log-order state)",
                got.fingerprint, want.fingerprint
            ));
        }
    }
    for (tid, tdef) in spec.tables.iter().enumerate() {
        for row in 0..tdef.rows {
            let rid = RecordId::new(tid as u32, row);
            let want = oracle.read_u64(rid);
            match read_final(rid) {
                Some(got) if got == want => {}
                got => {
                    return Err(format!(
                        "final state diverges at {rid}: engine {got:?}, serial {want}"
                    ))
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bohm_common::{Procedure, SmallBankProc};
    use bohm_workloads::TableDef;

    fn spec() -> DatabaseSpec {
        DatabaseSpec::new(vec![TableDef {
            rows: 4,
            record_size: 8,
            seed: |r| r * 100,
        }])
    }

    fn rmw(k: u64, d: u64) -> Txn {
        let rid = RecordId::new(0, k);
        Txn::new(
            vec![rid],
            vec![rid],
            Procedure::ReadModifyWrite { delta: d },
        )
    }

    #[test]
    fn oracle_seeds_and_applies() {
        let mut o = SerialOracle::new(&spec());
        assert_eq!(o.read_u64(RecordId::new(0, 2)), 200);
        let out = o.apply(&rmw(2, 5));
        assert!(out.committed);
        assert_eq!(o.read_u64(RecordId::new(0, 2)), 205);
    }

    #[test]
    fn oracle_buffers_aborted_writes() {
        let mut o = SerialOracle::new(&spec());
        let sav = RecordId::new(0, 0); // value 0
        let t = Txn::new(
            vec![sav],
            vec![sav],
            Procedure::SmallBank(SmallBankProc::TransactSaving { v: -10 }),
        );
        assert!(!o.apply(&t).committed);
        assert_eq!(o.read_u64(sav), 0);
    }

    #[test]
    fn oracle_read_own_write_within_txn() {
        // Two blind writes of the same record: second wins.
        let rid = RecordId::new(0, 1);
        let t = Txn::new(vec![], vec![rid, rid], Procedure::BlindWrite { value: 9 });
        let mut o = SerialOracle::new(&spec());
        o.apply(&t);
        assert_eq!(o.read_u64(rid), 9);
    }

    #[test]
    fn equivalence_detects_divergence() {
        let txns = vec![rmw(0, 1), rmw(0, 1)];
        let mut oracle = SerialOracle::new(&spec());
        let outcomes: Vec<ExecOutcome> = txns.iter().map(|t| oracle.apply(t)).collect();
        // Matching replay passes.
        assert!(check_serial_equivalence(&spec(), &txns, &outcomes, |rid| {
            Some(oracle.read_u64(rid))
        })
        .is_ok());
        // A final-state lie is caught.
        let err = check_serial_equivalence(&spec(), &txns, &outcomes, |rid| {
            Some(oracle.read_u64(rid) + u64::from(rid.row == 0))
        })
        .unwrap_err();
        assert!(err.contains("final state"), "{err}");
        // A flipped commit decision is caught.
        let mut bad = outcomes.clone();
        bad[1].committed = false;
        let err = check_serial_equivalence(&spec(), &txns, &bad, |rid| Some(oracle.read_u64(rid)))
            .unwrap_err();
        assert!(err.contains("committed") || err.contains("abort"), "{err}");
        // A wrong fingerprint (phantom read) is caught.
        let mut bad = outcomes;
        bad[1].fingerprint ^= 1;
        let err = check_serial_equivalence(&spec(), &txns, &bad, |rid| Some(oracle.read_u64(rid)))
            .unwrap_err();
        assert!(err.contains("fingerprint"), "{err}");
    }
}
