//! Test substrate: a serial oracle and equivalence checkers.
//!
//! The core correctness claim of every engine here is serializability:
//! the concurrent execution must be equivalent to *some* serial order —
//! and for BOHM specifically to **the log order** (paper §3.3.3: timestamp
//! order *is* the serialization order). The [`SerialOracle`] executes the
//! same transactions one at a time on a plain in-memory store; comparing
//! final states and per-transaction outcomes against it is how the
//! integration and property tests validate the engines.
//!
//! The oracle models the full record lifecycle: tables have a seeded
//! prefix plus absent headroom slots ([`TableDef::spare_rows`]); a write
//! to an absent slot is an insert, reads of absent slots succeed through
//! [`Access::read_maybe`], and [`row_count`](SerialOracle::row_count)
//! exposes how many records exist — so equivalence checks validate
//! inserted rows, not just updated ones.

use bohm_common::engine::ExecOutcome;
use bohm_common::{AbortReason, Access, RecordId, Txn};
use bohm_workloads::{DatabaseSpec, TableDef};

/// A trivially-correct single-threaded executor.
pub struct SerialOracle {
    /// `None` = slot reserved but absent (never inserted / headroom).
    tables: Vec<Vec<Option<Box<[u8]>>>>,
    record_sizes: Vec<usize>,
    scratch: bohm_common::ExecScratch,
}

struct OracleAccess<'a> {
    tables: &'a Vec<Vec<Option<Box<[u8]>>>>,
    record_sizes: &'a [usize],
    txn: &'a Txn,
    /// Buffered writes and deletes (`None` = delete), applied in order only
    /// on commit (keeps the oracle correct even for procedures that violate
    /// the abort-before-write contract).
    pending: Vec<(RecordId, Option<Box<[u8]>>)>,
}

impl Access for OracleAccess<'_> {
    fn read(&mut self, idx: usize, out: &mut dyn FnMut(&[u8])) -> Result<(), AbortReason> {
        if !self.read_maybe(idx, out)? {
            panic!("read of unknown record {}", self.txn.reads[idx]);
        }
        Ok(())
    }

    fn read_maybe(&mut self, idx: usize, out: &mut dyn FnMut(&[u8])) -> Result<bool, AbortReason> {
        let rid = self.txn.reads[idx];
        if let Some((_, data)) = self.pending.iter().rev().find(|(r, _)| *r == rid) {
            return Ok(match data {
                Some(d) => {
                    out(d);
                    true
                }
                None => false, // deleted by this transaction
            });
        }
        match &self.tables[rid.table.index()][rid.row as usize] {
            Some(data) => {
                out(data);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn write(&mut self, idx: usize, data: &[u8]) -> Result<(), AbortReason> {
        let rid = self.txn.writes[idx];
        assert_eq!(
            data.len(),
            self.record_sizes[rid.table.index()],
            "payload must be record-sized"
        );
        self.pending.push((rid, Some(data.into())));
        Ok(())
    }

    fn delete(&mut self, idx: usize) -> Result<(), AbortReason> {
        self.pending.push((self.txn.writes[idx], None));
        Ok(())
    }

    fn scan(&mut self, idx: usize, out: &mut dyn FnMut(u64, &[u8])) -> Result<u64, AbortReason> {
        // Serial semantics are the reference the engines' phantom
        // protection must reproduce: the range's membership at this
        // transaction's position in the log, in key order. (Scans must not
        // overlap the transaction's own write set, so the pending buffer is
        // deliberately not consulted.)
        let s = self.txn.scans[idx];
        let table = &self.tables[s.table.index()];
        assert!(
            s.hi as usize <= table.len(),
            "scan range {s:?} beyond table capacity {}",
            table.len()
        );
        let mut n = 0;
        for row in s.rows() {
            if let Some(data) = &table[row as usize] {
                out(row, data);
                n += 1;
            }
        }
        Ok(n)
    }

    fn index_scan(
        &mut self,
        idx: usize,
        out: &mut dyn FnMut(u64, &[u8]),
    ) -> Result<u64, AbortReason> {
        // Serial reference semantics for secondary indexes: the committed
        // posting list of the scanned key at this transaction's log
        // position, each member row read from the same committed state, in
        // ascending row order. (Like `scan`, the pending buffer is not
        // consulted: index-scanned keys must not be in the transaction's
        // own write set.)
        let s = self.txn.index_scans[idx];
        let list_rid = self.txn.reads[s.list];
        let Some(list) = self.tables[list_rid.table.index()][list_rid.row as usize].as_deref()
        else {
            return Ok(0);
        };
        let table = &self.tables[s.table.index()];
        let mut n = 0;
        for row in bohm_common::index::posting_rows(list) {
            if let Some(Some(data)) = table.get(row as usize) {
                out(row, data);
                n += 1;
            }
        }
        Ok(n)
    }

    fn write_len(&mut self, idx: usize) -> usize {
        self.record_sizes[self.txn.writes[idx].table.index()]
    }
}

impl SerialOracle {
    pub fn new(spec: &DatabaseSpec) -> Self {
        let tables = spec
            .tables
            .iter()
            .map(|t| {
                (0..t.capacity())
                    .map(|row| {
                        (row < t.rows)
                            .then(|| bohm_common::value::of_u64((t.seed)(row), t.record_size))
                    })
                    .collect()
            })
            .collect();
        Self {
            tables,
            record_sizes: spec.tables.iter().map(|t| t.record_size).collect(),
            scratch: bohm_common::ExecScratch::new(),
        }
    }

    /// Execute one transaction serially; returns the same outcome shape the
    /// engines report.
    pub fn apply(&mut self, txn: &Txn) -> ExecOutcome {
        let mut access = OracleAccess {
            tables: &self.tables,
            record_sizes: &self.record_sizes,
            txn,
            pending: Vec::new(),
        };
        match bohm_common::execute_procedure(
            &txn.proc,
            &txn.reads,
            &txn.writes,
            &txn.scans,
            &mut access,
            &mut self.scratch,
        ) {
            Ok(fp) => {
                let pending = access.pending;
                for (rid, data) in pending {
                    // A write to an absent slot is the record's insert; a
                    // `None` entry is a delete, returning the slot to the
                    // absent pool (re-insertable by a later transaction).
                    self.tables[rid.table.index()][rid.row as usize] = data;
                }
                ExecOutcome {
                    committed: true,
                    fingerprint: fp,
                    cc_retries: 0,
                }
            }
            Err(AbortReason::User) => ExecOutcome {
                committed: false,
                fingerprint: 0,
                cc_retries: 0,
            },
            Err(e) => unreachable!("oracle cannot raise {e:?}"),
        }
    }

    /// Current `u64` prefix of a record; `None` while the record is absent.
    pub fn read_u64(&self, rid: RecordId) -> Option<u64> {
        self.tables[rid.table.index()][rid.row as usize]
            .as_deref()
            .map(|d| bohm_common::value::get_u64(d, 0))
    }

    /// Raw record bytes, if the record exists.
    pub fn read_record(&self, rid: RecordId) -> Option<&[u8]> {
        self.tables[rid.table.index()][rid.row as usize].as_deref()
    }

    /// Slot capacity of a table (seeded rows + insert headroom).
    pub fn table_rows(&self, table: usize) -> u64 {
        self.tables[table].len() as u64
    }

    /// Number of records that exist in `table` (seeded + inserted).
    pub fn row_count(&self, table: usize) -> u64 {
        self.tables[table].iter().filter(|r| r.is_some()).count() as u64
    }
}

/// Replay `txns` serially and compare against an engine's observed
/// per-transaction outcomes and final state.
///
/// `read_final` exposes the engine's committed value of each record after
/// the run — `None` for records the engine considers absent, which must
/// agree with the oracle slot-for-slot across the full capacity (so both
/// missing inserts and phantom inserts are caught). Returns a description
/// of the first divergence, if any.
pub fn check_serial_equivalence(
    spec: &DatabaseSpec,
    txns: &[Txn],
    outcomes: &[ExecOutcome],
    read_final: impl Fn(RecordId) -> Option<u64>,
) -> Result<(), String> {
    assert_eq!(txns.len(), outcomes.len());
    let mut oracle = SerialOracle::new(spec);
    for (i, (t, got)) in txns.iter().zip(outcomes).enumerate() {
        let want = oracle.apply(t);
        if want.committed != got.committed {
            return Err(format!(
                "txn {i}: engine {} but serial order says {}",
                if got.committed {
                    "committed"
                } else {
                    "aborted"
                },
                if want.committed { "commit" } else { "abort" },
            ));
        }
        if want.committed && want.fingerprint != got.fingerprint {
            return Err(format!(
                "txn {i}: read fingerprint {:#x} != serial {:#x} (reads observed a non-log-order state)",
                got.fingerprint, want.fingerprint
            ));
        }
    }
    for (tid, tdef) in spec.tables.iter().enumerate() {
        for row in 0..tdef.capacity() {
            let rid = RecordId::new(tid as u32, row);
            let want = oracle.read_u64(rid);
            let got = read_final(rid);
            if got != want {
                return Err(format!(
                    "final state diverges at {rid}: engine {got:?}, serial {want:?}"
                ));
            }
        }
    }
    Ok(())
}

/// Scan-vs-insert phantom hammer, runnable against any
/// [`BatchEngine`](bohm_common::engine::BatchEngine).
///
/// A writer thread alternately **materializes** the whole key window
/// `lo..lo+width` of `table` in one transaction
/// ([`Procedure::InsertKeyed`](bohm_common::Procedure::InsertKeyed), values `base + row`) and **dissolves** it
/// in one transaction ([`Procedure::GuardedDelete`](bohm_common::Procedure::GuardedDelete) over the window), for
/// `rounds` rounds. Concurrent scanner threads run
/// [`Procedure::RangeAudit`](bohm_common::Procedure::RangeAudit) over the window in a loop: because every
/// serial state of the window is "entirely present" or "entirely absent",
/// every scan must fingerprint as exactly one of those two — any other
/// outcome (a partial count, a gap, a torn value) is a phantom or
/// non-serializable scan, and the hammer panics with the offending
/// fingerprint.
///
/// `guard` must name an existing record whose `u64` prefix is ≥ 0 forever
/// (any seeded row) — it is the GuardedDelete guard read.
pub fn phantom_hammer<E: bohm_common::engine::BatchEngine>(
    engine: &E,
    guard: RecordId,
    table: u32,
    lo: u64,
    width: u64,
    rounds: u64,
) {
    phantom_hammer_ranges(engine, guard, table, lo, width, rounds, 1);
}

/// [`phantom_hammer`] with the scanners' window declared as `ranges`
/// adjacent [`ScanRange`](bohm_common::ScanRange)s instead of one — the
/// **multi-range-per-transaction** mode. Each scan transaction covers the
/// whole window split into `ranges` pieces; since every engine must give
/// the *transaction* one position in the serial order, the pieces must
/// observe the same serial point — a transaction whose first range sees
/// the materialized window while its second sees the dissolved one
/// fingerprints as a partial count or gap and panics.
pub fn phantom_hammer_ranges<E: bohm_common::engine::BatchEngine>(
    engine: &E,
    guard: RecordId,
    table: u32,
    lo: u64,
    width: u64,
    rounds: u64,
    ranges: u64,
) {
    use bohm_common::engine::Session;
    use bohm_common::{range_audit_fingerprint, Procedure, ScanRange};
    use bohm_sync::atomic::{AtomicBool, Ordering};
    assert!(
        ranges >= 1 && ranges <= width,
        "window must split into ranges"
    );
    let window: Vec<RecordId> = (lo..lo + width).map(|r| RecordId::new(table, r)).collect();
    let base = 10_000u64;
    let fp_full = range_audit_fingerprint(width, lo);
    // Split the window into `ranges` adjacent pieces (first pieces take the
    // remainder), so the audited union is exactly `lo..lo+width`.
    let scans: Vec<ScanRange> = {
        let mut out = Vec::with_capacity(ranges as usize);
        let (chunk, rem) = (width / ranges, width % ranges);
        let mut at = lo;
        for i in 0..ranges {
            let len = chunk + u64::from(i < rem);
            out.push(ScanRange::new(table, at, at + len));
            at += len;
        }
        out
    };
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let writer = {
            let window = window.clone();
            let stop = &stop;
            s.spawn(move || {
                let mut sess = engine.open_session();
                let ins = Txn::new(vec![], window.clone(), Procedure::InsertKeyed { base });
                let del = Txn::new(vec![guard], window, Procedure::GuardedDelete { min: 0 });
                for _ in 0..rounds {
                    sess.submit(ins.clone());
                    assert!(sess.reap().committed, "window insert must commit");
                    sess.submit(del.clone());
                    assert!(sess.reap().committed, "window delete must commit");
                }
                // RELAXED: `stop` only ends the scanners' loops; every
                // correctness check flows through the engine, and the scope
                // join synchronizes the final counts.
                stop.store(true, Ordering::Relaxed);
            })
        };
        let mut scanners = Vec::new();
        for _ in 0..2 {
            let stop = &stop;
            let scans = &scans;
            scanners.push(s.spawn(move || {
                let mut sess = engine.open_session();
                let scan = Txn::with_scans(
                    vec![],
                    vec![],
                    scans.clone(),
                    Procedure::RangeAudit { expect_base: base },
                );
                let mut seen = 0u64;
                // A floor of scans keeps the audit meaningful even when a
                // fast writer drains its rounds before this thread spins up.
                // RELAXED: see the writer's store — a stale read just runs
                // one more harmless scan iteration.
                while !stop.load(Ordering::Relaxed) || seen < 64 {
                    sess.submit(scan.clone());
                    let out = sess.reap();
                    assert!(out.committed, "scans never abort");
                    assert!(
                        out.fingerprint == 0 || out.fingerprint == fp_full,
                        "phantom scan: fingerprint {:#x} is neither the empty \
                         nor the full window (full = {fp_full:#x})",
                        out.fingerprint
                    );
                    seen += 1;
                }
                seen
            }));
        }
        writer.join().unwrap();
        for sc in scanners {
            assert!(sc.join().unwrap() > 0, "scanner made no progress");
        }
    });
}

/// Index-key phantom hammer: NewOrder/Delivery churn of one customer's
/// posting list vs. concurrent
/// [`TpcCProc::CustomerStatus`](bohm_common::TpcCProc::CustomerStatus)
/// index scanners, runnable against any engine.
///
/// The writer repeatedly inserts `delivery_batch` orders for **one fixed
/// customer** (one NewOrder per transaction, ring rows `0..B`, identical
/// payloads every round) and then delivers — deletes and unindexes — all
/// of them in a single transaction. The only serial states of the
/// customer's posting set are therefore the prefixes `{}, {0}, {0,1}, …,
/// {0..B-1}` — so every concurrent CustomerStatus scan must fingerprint
/// as exactly one of those `B + 1` precomputed values. Anything else is a
/// phantom on the index key (a half-observed insert or delivery) or a
/// torn member read, and the hammer panics.
///
/// `cfg` must have the customer index, one stripe ring of exactly
/// `delivery_batch` slots (`order_capacity / order_stripes ==
/// delivery_batch`), and `orders_per_customer ≥ delivery_batch`; Payment
/// is never issued, so the customer balance (and thus the fingerprint
/// base) stays at the 100 000-cent seed.
pub fn index_phantom_hammer<E: bohm_common::engine::BatchEngine>(
    engine: &E,
    cfg: &bohm_workloads::tpcc::TpccConfig,
    rounds: u64,
) {
    use bohm_common::engine::Session;
    use bohm_common::value::{checksum, of_u64, put_u64};
    use bohm_sync::atomic::{AtomicBool, Ordering};
    use bohm_workloads::tpcc;
    assert!(cfg.has_customer_index(), "hammer needs the customer index");
    let batch = cfg.delivery_batch;
    assert_eq!(
        cfg.orders_per_stripe(),
        batch,
        "stripe ring must hold exactly one delivery batch so rows repeat each round"
    );
    assert!(
        cfg.orders_per_customer >= batch,
        "posting list must fit the batch"
    );
    // Stripe 0's partition always contains global customer 0 = (w0,d0,c0).
    let (w, d, c) = (0, 0, 0);
    let spec = cfg.spec();
    let order_size = spec.tables[tpcc::tables::ORDER as usize].record_size;
    // Legal fingerprints: every prefix of the round's insertion order. The
    // member payload prefix is balance·1000 + lines (balance stays at the
    // 100_000 seed; lines fixed at 1), with the customer row id at byte 8.
    let payload = {
        let mut p = of_u64(100_000 * 1_000 + 1, order_size);
        put_u64(&mut p, 8, 0);
        p
    };
    let member_ck = checksum(&payload);
    let legal: Vec<u64> = (0..=batch)
        .map(|j| {
            let mut fp = 100_000u64;
            for row in 0..j {
                fp = fp.wrapping_mul(31).wrapping_add(row ^ member_ck);
            }
            fp.wrapping_mul(31).wrapping_add(j)
        })
        .collect();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let writer = {
            let stop = &stop;
            s.spawn(move || {
                let mut sess = engine.open_session();
                for round in 0..rounds {
                    for i in 0..batch {
                        sess.submit(tpcc::new_order(cfg, w, d, c, i, 1));
                        assert!(sess.reap().committed, "NewOrder must commit");
                    }
                    let custs = vec![0u64; batch as usize];
                    sess.submit(tpcc::delivery(cfg, 0, round * batch, batch, &custs));
                    assert!(sess.reap().committed, "Delivery must commit");
                }
                // RELAXED: exit flag only; no data is published through it.
                stop.store(true, Ordering::Relaxed);
            })
        };
        let mut scanners = Vec::new();
        for _ in 0..2 {
            let stop = &stop;
            let legal = &legal;
            scanners.push(s.spawn(move || {
                let mut sess = engine.open_session();
                let scan = tpcc::customer_status(cfg, w, d, c);
                let mut seen = 0u64;
                // RELAXED: stale reads only add extra scan iterations.
                while !stop.load(Ordering::Relaxed) || seen < 64 {
                    sess.submit(scan.clone());
                    let out = sess.reap();
                    assert!(out.committed, "index scans never abort");
                    assert!(
                        legal.contains(&out.fingerprint),
                        "index-key phantom: fingerprint {:#x} matches no \
                         prefix of the customer's posting set (legal: {legal:x?})",
                        out.fingerprint
                    );
                    seen += 1;
                }
                seen
            }));
        }
        writer.join().unwrap();
        for sc in scanners {
            assert!(sc.join().unwrap() > 0, "index scanner made no progress");
        }
    });
}

/// Count the records an engine exposes in `table` by probing every slot of
/// the declared capacity through its quiescent read hook.
pub fn engine_row_count(
    tdef: &TableDef,
    table: u32,
    read: impl Fn(RecordId) -> Option<u64>,
) -> u64 {
    (0..tdef.capacity())
        .filter(|&row| read(RecordId::new(table, row)).is_some())
        .count() as u64
}

// ---------------------------------------------------------------------------
// Allocation accounting
// ---------------------------------------------------------------------------

/// A [`GlobalAlloc`](std::alloc::GlobalAlloc) wrapper over the system
/// allocator that counts every allocation (count and bytes). Install it in
/// a test binary to prove a code path is allocation-free:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: bohm_testkit::CountingAlloc = bohm_testkit::CountingAlloc;
///
/// let before = bohm_testkit::CountingAlloc::allocations();
/// hot_path();
/// assert!(bohm_testkit::CountingAlloc::allocations() - before < budget);
/// ```
///
/// Only `alloc`/`alloc_zeroed`/`realloc` are counted — frees are not, so a
/// steady-state window that only *returns* memory reads as zero. Counters
/// are global (`Relaxed` atomics): snapshot deltas around the window under
/// test rather than comparing absolute values, and keep such tests in their
/// own binary so parallel tests don't pollute the window.
pub struct CountingAlloc;

static ALLOCATIONS: core::sync::atomic::AtomicU64 = core::sync::atomic::AtomicU64::new(0);
static ALLOCATED_BYTES: core::sync::atomic::AtomicU64 = core::sync::atomic::AtomicU64::new(0);

impl CountingAlloc {
    /// Total allocation calls since process start.
    pub fn allocations() -> u64 {
        // RELAXED: statistics counter; callers only diff it around a
        // single-threaded region.
        ALLOCATIONS.load(core::sync::atomic::Ordering::Relaxed)
    }

    /// Total bytes requested since process start (reallocs count their new
    /// size in full).
    pub fn allocated_bytes() -> u64 {
        // RELAXED: statistics counter, as above.
        ALLOCATED_BYTES.load(core::sync::atomic::Ordering::Relaxed)
    }
}

// The counters deliberately use raw `core::sync::atomic` instead of the
// `bohm_sync` facade: a global allocator runs under every thread including
// the model scheduler itself, and instrumenting it would recurse (the
// scheduler allocates while recording the allocation's yield point).
//
// SAFETY: every method delegates to `std::alloc::System` with the caller's
// exact layout; the counter bumps have no effect on allocation semantics.
unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    // SAFETY: forwards to `System.alloc` under the caller's contract.
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        // RELAXED: monotonic statistics; readers tolerate approximate views.
        ALLOCATIONS.fetch_add(1, core::sync::atomic::Ordering::Relaxed);
        // RELAXED: as above.
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, core::sync::atomic::Ordering::Relaxed);
        std::alloc::System.alloc(layout)
    }

    // SAFETY: forwards to `System.alloc_zeroed` under the caller's contract.
    unsafe fn alloc_zeroed(&self, layout: std::alloc::Layout) -> *mut u8 {
        // RELAXED: monotonic statistics; readers tolerate approximate views.
        ALLOCATIONS.fetch_add(1, core::sync::atomic::Ordering::Relaxed);
        // RELAXED: as above.
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, core::sync::atomic::Ordering::Relaxed);
        std::alloc::System.alloc_zeroed(layout)
    }

    // SAFETY: forwards to `System.realloc` under the caller's contract.
    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        // RELAXED: monotonic statistics; readers tolerate approximate views.
        ALLOCATIONS.fetch_add(1, core::sync::atomic::Ordering::Relaxed);
        // RELAXED: as above.
        ALLOCATED_BYTES.fetch_add(new_size as u64, core::sync::atomic::Ordering::Relaxed);
        std::alloc::System.realloc(ptr, layout, new_size)
    }

    // SAFETY: forwards to `System.dealloc` under the caller's contract.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        std::alloc::System.dealloc(ptr, layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bohm_common::{Procedure, SmallBankProc, TpcCProc, ABSENT_FINGERPRINT};
    use bohm_workloads::TableDef;

    fn spec() -> DatabaseSpec {
        DatabaseSpec::new(vec![TableDef {
            rows: 4,
            spare_rows: 0,
            record_size: 8,
            seed: |r| r * 100,
            growable: false,
        }])
    }

    fn spec_with_headroom() -> DatabaseSpec {
        DatabaseSpec::new(vec![TableDef {
            rows: 2,
            spare_rows: 3,
            record_size: 8,
            seed: |r| r * 100,
            growable: false,
        }])
    }

    fn rmw(k: u64, d: u64) -> Txn {
        let rid = RecordId::new(0, k);
        Txn::new(
            vec![rid],
            vec![rid],
            Procedure::ReadModifyWrite { delta: d },
        )
    }

    #[test]
    fn oracle_seeds_and_applies() {
        let mut o = SerialOracle::new(&spec());
        assert_eq!(o.read_u64(RecordId::new(0, 2)), Some(200));
        let out = o.apply(&rmw(2, 5));
        assert!(out.committed);
        assert_eq!(o.read_u64(RecordId::new(0, 2)), Some(205));
    }

    #[test]
    fn oracle_buffers_aborted_writes() {
        let mut o = SerialOracle::new(&spec());
        let sav = RecordId::new(0, 0); // value 0
        let t = Txn::new(
            vec![sav],
            vec![sav],
            Procedure::SmallBank(SmallBankProc::TransactSaving { v: -10 }),
        );
        assert!(!o.apply(&t).committed);
        assert_eq!(o.read_u64(sav), Some(0));
    }

    #[test]
    fn oracle_read_own_write_within_txn() {
        // Two blind writes of the same record: second wins.
        let rid = RecordId::new(0, 1);
        let t = Txn::new(vec![], vec![rid, rid], Procedure::BlindWrite { value: 9 });
        let mut o = SerialOracle::new(&spec());
        o.apply(&t);
        assert_eq!(o.read_u64(rid), Some(9));
    }

    #[test]
    fn oracle_inserts_and_counts_rows() {
        let mut o = SerialOracle::new(&spec_with_headroom());
        assert_eq!(o.row_count(0), 2);
        assert_eq!(o.table_rows(0), 5);
        let fresh = RecordId::new(0, 3);
        assert_eq!(o.read_u64(fresh), None);
        let t = Txn::new(vec![], vec![fresh], Procedure::BlindWrite { value: 7 });
        assert!(o.apply(&t).committed);
        assert_eq!(o.read_u64(fresh), Some(7));
        assert_eq!(o.row_count(0), 3);
    }

    #[test]
    fn oracle_absent_reads_fingerprint_like_engines() {
        let mut o = SerialOracle::new(&spec_with_headroom());
        let probe = Txn::new(
            vec![RecordId::new(0, 0), RecordId::new(0, 4)],
            vec![],
            Procedure::TpcC(TpcCProc::OrderStatus),
        );
        let out = o.apply(&probe);
        assert!(out.committed);
        assert_eq!(
            out.fingerprint,
            0u64.wrapping_mul(31).wrapping_add(ABSENT_FINGERPRINT)
        );
    }

    #[test]
    fn oracle_deletes_and_recycles_slots() {
        let mut o = SerialOracle::new(&spec());
        let victim = RecordId::new(0, 1); // seeded 100
        let del = Txn::new(
            vec![RecordId::new(0, 0)],
            vec![victim],
            Procedure::GuardedDelete { min: 0 },
        );
        assert!(o.apply(&del).committed);
        assert_eq!(o.read_u64(victim), None, "deleted row is absent");
        assert_eq!(o.row_count(0), 3);
        // The slot is reusable: a write re-inserts it.
        let ins = Txn::new(vec![], vec![victim], Procedure::BlindWrite { value: 7 });
        assert!(o.apply(&ins).committed);
        assert_eq!(o.read_u64(victim), Some(7));
        assert_eq!(o.row_count(0), 4);
    }

    #[test]
    fn oracle_aborted_delete_leaves_row_intact() {
        let mut o = SerialOracle::new(&spec());
        let victim = RecordId::new(0, 1);
        // Guard (row 0, value 0) below min ⇒ user abort before the delete.
        let del = Txn::new(
            vec![RecordId::new(0, 0)],
            vec![victim],
            Procedure::GuardedDelete { min: 1 },
        );
        assert!(!o.apply(&del).committed);
        assert_eq!(o.read_u64(victim), Some(100));
        assert_eq!(o.row_count(0), 4);
    }

    #[test]
    fn oracle_read_after_delete_within_txn_sees_absence() {
        // Delivery shape: a txn that deletes then re-probes through pending
        // must observe its own delete.
        let mut o = SerialOracle::new(&spec_with_headroom());
        let order = RecordId::new(0, 1); // seeded 100
        let cursor = RecordId::new(0, 0); // seeded 0
        let rids = vec![cursor, order];
        let t = Txn::new(rids.clone(), rids, Procedure::TpcC(TpcCProc::Delivery));
        let out = o.apply(&t);
        assert!(out.committed);
        assert_eq!(o.read_u64(order), None, "delivered order is deleted");
        assert_eq!(o.read_u64(cursor), Some(1), "cursor advanced");
    }

    #[test]
    fn oracle_scan_tracks_membership_across_inserts_and_deletes() {
        use bohm_common::ScanRange;
        let mut o = SerialOracle::new(&spec_with_headroom()); // rows 0,1 seeded
        let history = || {
            Txn::with_scans(
                vec![RecordId::new(0, 0)],
                vec![],
                vec![ScanRange::new(0, 0, 5)],
                Procedure::TpcC(TpcCProc::OrderHistory),
            )
        };
        let fp0 = o.apply(&history()).fingerprint;
        // Insert into the scanned range: membership (and fingerprint) change.
        let fresh = RecordId::new(0, 3);
        assert!(
            o.apply(&Txn::new(
                vec![],
                vec![fresh],
                Procedure::BlindWrite { value: 9 }
            ))
            .committed
        );
        let fp1 = o.apply(&history()).fingerprint;
        assert_ne!(fp0, fp1, "insert into the range must be observed");
        // Delete from the scanned range: membership shrinks again.
        let del = Txn::new(
            vec![RecordId::new(0, 0)],
            vec![fresh],
            Procedure::GuardedDelete { min: 0 },
        );
        assert!(o.apply(&del).committed);
        assert_eq!(
            o.apply(&history()).fingerprint,
            fp0,
            "delete restores the original membership"
        );
    }

    #[test]
    fn equivalence_detects_divergence() {
        let txns = vec![rmw(0, 1), rmw(0, 1)];
        let mut oracle = SerialOracle::new(&spec());
        let outcomes: Vec<ExecOutcome> = txns.iter().map(|t| oracle.apply(t)).collect();
        // Matching replay passes.
        assert!(check_serial_equivalence(&spec(), &txns, &outcomes, |rid| {
            oracle.read_u64(rid)
        })
        .is_ok());
        // A final-state lie is caught.
        let err = check_serial_equivalence(&spec(), &txns, &outcomes, |rid| {
            Some(oracle.read_u64(rid).unwrap() + u64::from(rid.row == 0))
        })
        .unwrap_err();
        assert!(err.contains("final state"), "{err}");
        // A flipped commit decision is caught.
        let mut bad = outcomes.clone();
        bad[1].committed = false;
        let err =
            check_serial_equivalence(&spec(), &txns, &bad, |rid| oracle.read_u64(rid)).unwrap_err();
        assert!(err.contains("committed") || err.contains("abort"), "{err}");
        // A wrong fingerprint (phantom read) is caught.
        let mut bad = outcomes;
        bad[1].fingerprint ^= 1;
        let err =
            check_serial_equivalence(&spec(), &txns, &bad, |rid| oracle.read_u64(rid)).unwrap_err();
        assert!(err.contains("fingerprint"), "{err}");
    }

    #[test]
    fn equivalence_catches_missing_and_phantom_inserts() {
        let spec = spec_with_headroom();
        let fresh = RecordId::new(0, 2);
        let txns = vec![Txn::new(
            vec![],
            vec![fresh],
            Procedure::BlindWrite { value: 9 },
        )];
        let mut oracle = SerialOracle::new(&spec);
        let outcomes: Vec<ExecOutcome> = txns.iter().map(|t| oracle.apply(t)).collect();
        // Engine agreeing slot-for-slot passes.
        assert!(
            check_serial_equivalence(&spec, &txns, &outcomes, |rid| oracle.read_u64(rid)).is_ok()
        );
        // Engine that lost the insert is caught.
        let err = check_serial_equivalence(&spec, &txns, &outcomes, |rid| {
            if rid == fresh {
                None
            } else {
                oracle.read_u64(rid)
            }
        })
        .unwrap_err();
        assert!(err.contains("diverges"), "{err}");
        // Engine that invented a row is caught.
        let err = check_serial_equivalence(&spec, &txns, &outcomes, |rid| {
            oracle.read_u64(rid).or(Some(1))
        })
        .unwrap_err();
        assert!(err.contains("diverges"), "{err}");
        // Row counting helper agrees with the oracle.
        assert_eq!(
            engine_row_count(&spec.tables[0], 0, |rid| oracle.read_u64(rid)),
            oracle.row_count(0)
        );
    }
}
