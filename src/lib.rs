//! Facade crate re-exporting the whole BOHM reproduction workspace.
//!
//! Downstream code can depend on `bohm-suite` alone and reach every
//! subsystem through one namespace. See `DESIGN.md` for the system map.
//!
//! Allocator note: the original experiments ran the examples and
//! integration tests with mimalloc — BOHM's CC phase allocates a version
//! object per write and frees them across threads via epoch reclamation, a
//! pattern on which glibc malloc was measured to be the bottleneck (see
//! DESIGN.md). The hermetic build has no mimalloc crate, so the system
//! allocator is used; correctness is unaffected.
//!
//! Concurrency-correctness quickstart (details in DESIGN.md §"Concurrency
//! correctness"):
//!
//! ```sh
//! cargo run -p analysis -- --check                      # repo-invariant lint
//! RUSTFLAGS="--cfg bohm_modelcheck" \
//!     cargo test --test modelcheck                      # model-check harnesses
//! BOHM_MODEL_SEED=17 RUSTFLAGS="--cfg bohm_modelcheck" \
//!     cargo test --test modelcheck my_model             # replay a reported seed
//! ```

pub use bohm as core;
pub use bohm_common as common;
pub use bohm_hekaton as hekaton;
pub use bohm_lockmgr as lockmgr;
pub use bohm_mvstore as mvstore;
pub use bohm_occ as occ;
pub use bohm_svstore as svstore;
pub use bohm_testkit as testkit;
pub use bohm_tpl as tpl;
pub use bohm_workloads as workloads;
