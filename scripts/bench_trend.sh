#!/usr/bin/env sh
# Diff two BENCH_*.json benchmark artifacts (the schema written by
# bench/src/report.rs::write_bench_json) and print per-figure, per-series
# throughput deltas — the quick way to spot a regression (e.g. in the
# OrderHistory scan path) between two runs.
#
# Usage:
#   scripts/bench_trend.sh OLD.json NEW.json   # explicit pair
#   scripts/bench_trend.sh DIR                 # two newest BENCH_*.json in DIR
#
# Exit status: 0 always (the report is informational; gate on it in CI by
# grepping the output if desired).
set -eu

if [ "$#" -eq 2 ]; then
    old="$1"
    new="$2"
elif [ "$#" -eq 1 ] && [ -d "$1" ]; then
    # Two newest artifacts by mtime (whitespace-safe: one path per line).
    new=$(ls -1t "$1"/BENCH_*.json 2>/dev/null | sed -n 1p)
    old=$(ls -1t "$1"/BENCH_*.json 2>/dev/null | sed -n 2p)
    if [ -z "$old" ]; then
        echo "bench_trend: need at least two BENCH_*.json artifacts in the directory" >&2
        exit 1
    fi
else
    echo "usage: $0 OLD.json NEW.json | $0 DIR" >&2
    exit 1
fi

exec python3 - "$old" "$new" <<'PY'
import json
import signal
import sys

# Die quietly when the output is piped into `head` etc.
signal.signal(signal.SIGPIPE, signal.SIG_DFL)

old_path, new_path = sys.argv[1], sys.argv[2]


def load(path):
    """{(figure_title, series_label, x): throughput}"""
    out = {}
    with open(path) as f:
        doc = json.load(f)
    for fig in doc.get("figures", []):
        for series in fig.get("series", []):
            for x, y in series.get("points", []):
                out[(fig["title"], series["label"], x)] = y
    return out


old, new = load(old_path), load(new_path)
print(f"bench trend: {old_path} -> {new_path}")
current_title = None
for (title, label, x) in sorted(new):
    if title != current_title:
        current_title = title
        print(f"\n== {title} ==")
    y_new = new[(title, label, x)]
    y_old = old.get((title, label, x))
    if y_old is None:
        print(f"  {label:>12} @ {x:>5g}: {y_new:>12.0f}  (new series/point)")
    elif y_old == 0:
        print(f"  {label:>12} @ {x:>5g}: {y_new:>12.0f}  (old was 0)")
    else:
        delta = 100.0 * (y_new - y_old) / y_old
        flag = "  <-- regression" if delta < -10.0 else ""
        print(
            f"  {label:>12} @ {x:>5g}: {y_old:>12.0f} -> {y_new:>12.0f}"
            f"  ({delta:+6.1f}%){flag}"
        )
missing = sorted(set(old) - set(new))
for (title, label, x) in missing:
    print(f"  dropped: {title} / {label} @ {x:g}")
PY
