#!/usr/bin/env sh
# Diff two BENCH_*.json benchmark artifacts (the schema written by
# bench/src/report.rs::write_bench_json) and print per-figure, per-series
# throughput deltas — the quick way to spot a regression (e.g. in the
# OrderHistory scan path) between two runs.
#
# Usage:
#   scripts/bench_trend.sh OLD.json NEW.json          # informational diff
#   scripts/bench_trend.sh --gate OLD.json NEW.json   # variance-aware gate
#   scripts/bench_trend.sh DIR                 # two newest BENCH_*.json in DIR
#
# Modes:
#   default  — report only; exit 0 always (regressions > 10% flagged inline).
#   --gate   — fail (exit 2) when any point's regression exceeds a
#              *variance-scaled* threshold: max(10%, 1.5 × (spread_old +
#              spread_new)) for that point, where `spread` is the per-point
#              (max−min)/median dispersion recorded by median-of-N figures
#              (fig_tpcc). A noisy host widens its own threshold instead of
#              flapping CI; a quiet host is held close to the 10% floor.
#              When either artifact predates the dispersion fields (no
#              median-of-N series), the gate cannot distinguish noise from
#              regression and automatically downgrades to informational
#              (exit 0) — so the first gated run after the schema change
#              never fails against a pre-schema baseline.
#              Series marked `"better": "lower"` in the artifact (e.g.
#              the recovery-time figure) gate on the value *rising* past
#              the threshold instead of falling.
set -eu

gate=0
if [ "${1:-}" = "--gate" ]; then
    gate=1
    shift
fi

if [ "$#" -eq 2 ]; then
    old="$1"
    new="$2"
elif [ "$#" -eq 1 ] && [ -d "$1" ]; then
    # Two newest artifacts by mtime (whitespace-safe: one path per line).
    new=$(ls -1t "$1"/BENCH_*.json 2>/dev/null | sed -n 1p)
    old=$(ls -1t "$1"/BENCH_*.json 2>/dev/null | sed -n 2p)
    if [ -z "$old" ]; then
        echo "bench_trend: need at least two BENCH_*.json artifacts in the directory" >&2
        exit 1
    fi
else
    echo "usage: $0 [--gate] OLD.json NEW.json | $0 DIR" >&2
    exit 1
fi

exec python3 - "$old" "$new" "$gate" <<'PY'
import json
import signal
import sys

# Die quietly when the output is piped into `head` etc.
signal.signal(signal.SIGPIPE, signal.SIG_DFL)

old_path, new_path, gate = sys.argv[1], sys.argv[2], sys.argv[3] == "1"

BASE_THRESHOLD = 0.10  # 10% floor, as before the variance-aware gate
SPREAD_SCALE = 1.5  # threshold widens by 1.5x the summed dispersions


def load(path):
    """{(figure_title, series_label, x): (value, spread_or_None, lower)}

    `spread` is the per-point (max-min)/median dispersion emitted by
    median-of-N series; None for single-shot series or pre-schema
    artifacts (which lack the field entirely). `lower` is True for
    series marked `"better": "lower"` (e.g. recovery latency) — the
    gate flips its regression direction for those; the key is absent
    on higher-is-better (throughput) series. Malformed or unknown
    entries (a figure without a title, a series without points) are
    skipped, not fatal: a new figure landing in one artifact must never
    break the trend diff against an older baseline.
    """
    out = {}
    skipped = 0
    with open(path) as f:
        doc = json.load(f)
    for fig in doc.get("figures", []):
        title = fig.get("title") if isinstance(fig, dict) else None
        if not title:
            skipped += 1
            continue
        for series in fig.get("series", []):
            label = series.get("label") if isinstance(series, dict) else None
            if not label:
                skipped += 1
                continue
            spreads = series.get("spread", [])
            runs = series.get("runs", 1)
            lower = series.get("better") == "lower"
            for i, point in enumerate(series.get("points", [])):
                if not isinstance(point, (list, tuple)) or len(point) != 2:
                    skipped += 1
                    continue
                x, y = point
                sp = spreads[i] if runs > 1 and i < len(spreads) else None
                out[(title, label, x)] = (y, sp, lower)
    if skipped:
        print(f"note: {path}: skipped {skipped} malformed figure/series entries")
    return out


old, new = load(old_path), load(new_path)
old_titles = {t for (t, _, _) in old}
new_titles = {t for (t, _, _) in new}
mode = "gate" if gate else "report"
print(f"bench trend ({mode}): {old_path} -> {new_path}")

# The gate needs dispersion on both sides to tell noise from regression.
gateable = any(sp is not None for _, sp, _ in old.values()) and any(
    sp is not None for _, sp, _ in new.values()
)
if gate and not gateable:
    print(
        "note: dispersion fields missing from one or both artifacts "
        "(pre-median-of-N baseline?) — gate downgraded to informational"
    )

failures = []
current_title = None
for (title, label, x) in sorted(new):
    if title != current_title:
        current_title = title
        print(f"\n== {title} ==")
        if title not in old_titles:
            # A figure the baseline has never seen (e.g. fig_wal landing
            # for the first time): nothing to diff, nothing to gate.
            print("  new figure — no baseline, skipped by the gate")
    y_new, sp_new, lower_new = new[(title, label, x)]
    entry_old = old.get((title, label, x))
    if entry_old is None:
        print(f"  {label:>12} @ {x:>5g}: {y_new:>12.0f}  (new series/point)")
        continue
    y_old, sp_old, lower_old = entry_old
    if y_old == 0:
        print(f"  {label:>12} @ {x:>5g}: {y_new:>12.0f}  (old was 0)")
        continue
    delta = (y_new - y_old) / y_old
    threshold = BASE_THRESHOLD
    detail = ""
    if sp_old is not None and sp_new is not None:
        threshold = max(BASE_THRESHOLD, SPREAD_SCALE * (sp_old + sp_new))
        detail = f" [thr {100 * threshold:.0f}%]"
    # Lower-is-better series (latency-style: `"better": "lower"` in
    # either artifact) regress when the value RISES past the threshold.
    if lower_new or lower_old:
        detail += " [lower-better]"
        flagged = delta > threshold
    else:
        flagged = delta < -threshold
    flag = "  <-- regression" if flagged else ""
    print(
        f"  {label:>12} @ {x:>5g}: {y_old:>12.0f} -> {y_new:>12.0f}"
        f"  ({100 * delta:+6.1f}%){detail}{flag}"
    )
    if flagged and sp_old is not None and sp_new is not None:
        failures.append((title, label, x, 100 * delta, 100 * threshold))

missing = sorted(set(old) - set(new))
for (title, label, x) in missing:
    print(f"  dropped: {title} / {label} @ {x:g}")

if gate and gateable and failures:
    breached = sorted({title for title, _, _, _, _ in failures})
    print(
        f"\ngate FAILED: {len(failures)} regression(s) beyond the "
        f"variance-scaled threshold in {len(breached)} figure(s):"
    )
    for fig_title in breached:
        print(f"  figure: {fig_title}")
        for title, label, x, d, t in failures:
            if title == fig_title:
                print(f"    {label} @ {x:g}: {d:+.1f}% (threshold {t:.0f}%)")
    sys.exit(2)
PY
